package lss

import (
	"fmt"

	"adapt/internal/telemetry"
)

// shardName decorates a metric name with the store's shard label so
// several shard stores can register on one telemetry set without
// colliding. Standalone stores (shard < 0) keep the plain canonical
// names. Names that already carry labels get ",shard=N" appended
// inside the braces.
func (s *Store) shardName(name string) string {
	if s.shard < 0 {
		return name
	}
	if last := len(name) - 1; last >= 0 && name[last] == '}' {
		return fmt.Sprintf("%s,shard=\"%d\"}", name[:last], s.shard)
	}
	return fmt.Sprintf("%s{shard=\"%d\"}", name, s.shard)
}

// attachTelemetry attaches a telemetry set to the store (reached via
// Deps.Telemetry or Reconfigure): canonical store metrics register as
// function-backed gauges over the live Metrics (zero hot-path cost),
// the recorder begins ticking on the store's simulated clock inside
// advance, and the tracer receives GC, seal, flush, and padding
// events. Pass nil to detach the recorder and tracer (registered
// gauges keep serving their last refreshed value).
//
// Attach at most one set per store, before concurrent use begins; the
// function gauges read store state and are refreshed only at recorder
// ticks, which run under the caller's store lock.
//
// Shard stores (Deps.Sharded) register every instrument under a
// {shard="id"} label and do NOT attach the recorder: a recorder tick
// refreshes every function gauge on the set, including other shards'
// store-reading gauges, so only the sharded engine — which can hold
// all shard locks at once — may drive it.
func (s *Store) attachTelemetry(ts *telemetry.Set) {
	s.tset = ts
	if ts == nil {
		s.tracer = nil
		s.rec = nil
		s.padHist = nil
		s.itv = nil
		return
	}
	s.tracer = ts.Tracer
	if s.shard < 0 {
		s.rec = ts.Recorder
	}
	s.itv = ts.Intervals
	reg := ts.Registry

	type cum struct {
		name, help string
		fn         func() int64
	}
	for _, c := range []cum{
		{telemetry.MetricUserBlocks, "User blocks accepted", func() int64 { return s.metrics.UserBlocks }},
		{telemetry.MetricGCBlocks, "Valid blocks rewritten by GC", func() int64 { return s.metrics.GCBlocks }},
		{telemetry.MetricShadowBlocks, "Shadow copies written", func() int64 { return s.metrics.ShadowBlocks }},
		{telemetry.MetricPaddingBlocks, "Zero-padding blocks written", func() int64 { return s.metrics.PaddingBlocks }},
		{telemetry.MetricReadBlocks, "User blocks read", func() int64 { return s.metrics.ReadBlocks }},
		{telemetry.MetricTrimmedBlocks, "Blocks discarded via Trim", func() int64 { return s.metrics.TrimmedBlocks }},
		{telemetry.MetricGCCycles, "GC activations", func() int64 { return s.metrics.GCCycles }},
		{telemetry.MetricGCThrottled, "GC activations throttled by degraded mode", func() int64 { return s.metrics.ThrottledGCCycles }},
		{telemetry.MetricSegmentsReclaimed, "Segments reclaimed by GC", func() int64 { return s.metrics.SegmentsReclaimed }},
		{telemetry.MetricGCScanned, "Victim-selection effort: index probes (legacy scan: candidates considered)", func() int64 { return s.metrics.GCScannedBlocks }},
		{telemetry.MetricGCSlices, "Externally paced GC slices executed", func() int64 { return s.metrics.GCSlices }},
		{telemetry.MetricGCEmergency, "Synchronous emergency GC runs under background mode", func() int64 { return s.metrics.GCEmergencyRuns }},
		{telemetry.MetricSLAViolations, "Persistence latencies beyond the SLA window", func() int64 { return s.metrics.Latency.Violations }},
		{telemetry.MetricChunkFlushes, "Chunk writes issued to the array", func() int64 {
			var n int64
			for i := range s.metrics.PerGroup {
				n += s.metrics.PerGroup[i].ChunkFlushes
			}
			return n
		}},
	} {
		reg.NewFuncGauge(s.shardName(c.name), c.help, true, c.fn)
	}
	reg.NewFuncGauge(s.shardName(telemetry.MetricFreeSegments), "Free segments in the pool", false,
		func() int64 { return int64(len(s.free)) })
	for i := range s.groups {
		i := i
		reg.NewFuncGauge(
			s.shardName(fmt.Sprintf("%s{group=\"%d\"}", telemetry.MetricGroupBlocksPrefix, i)),
			"Block slots written into the group", true,
			func() int64 { return s.metrics.PerGroup[i].TotalBlocks() })
		reg.NewFuncGauge(
			s.shardName(fmt.Sprintf("%s{group=\"%d\"}", telemetry.MetricGroupPaddingPrefix, i)),
			"Zero-padding block slots written into the group", true,
			func() int64 { return s.metrics.PerGroup[i].PaddingBlocks })
	}
	bounds := []int64{0, 1, 2, 4, 8}
	if last := int64(s.chunkBlocks); last > bounds[len(bounds)-1] {
		bounds = append(bounds, last)
	}
	s.padHist = reg.NewHistogram(s.shardName(telemetry.MetricChunkPadHistogram),
		"Padding blocks per chunk flush", bounds)

	if s.recoveredSegments > 0 {
		s.tracer.Emit(telemetry.Recovery(s.now, s.recoveredSegments, s.recoveredBlocks))
	}
}
