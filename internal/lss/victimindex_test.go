package lss

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"adapt/internal/sim"
)

// zipfLike draws a zipfian-skewed LBA in [0, n) by inverse-CDF of a
// power law, scrambled over the key space. (internal/workload has the
// exact Gray et al. generator, but importing it here would be an
// import cycle — workload's trace support depends on lss.)
func zipfLike(rng *sim.RNG, n int64) int64 {
	v := int64(float64(n) * math.Pow(rng.Float64(), 4))
	return (v * 2654435761) % n
}

// runDifferential replays a fixed skewed overwrite trace (with
// interleaved trims) and records the reclaimed-victim id sequence.
func runDifferential(t testing.TB, v VictimPolicy, legacy bool, seed uint64) ([]int, *Metrics) {
	cfg := smallConfig()
	cfg.Victim = v
	cfg.LegacyVictimScan = legacy
	s := New(cfg, twoGroup{})
	var seq []int
	s.onReclaim = func(segID int) { seq = append(seq, segID) }
	rng := sim.NewRNG(seed)
	for i := int64(0); i < cfg.UserBlocks; i++ {
		if err := s.WriteBlock(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < int(cfg.UserBlocks)*6; i++ {
		var lba int64
		if rng.Float64() < 0.9 {
			lba = rng.Int63n(cfg.UserBlocks / 10)
		} else {
			lba = rng.Int63n(cfg.UserBlocks)
		}
		if err := s.WriteBlock(lba, 0); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if err := s.Trim(rng.Int63n(cfg.UserBlocks-8), 8, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return seq, s.Metrics()
}

// TestVictimSequencesIdentical is the differential test for the
// deterministic policies: the incremental index and the reference scan
// must reclaim byte-identical victim sequences on an identical trace.
// (DChoices draws random samples, but both paths consume the same rng
// stream, so its sequence is deterministic too.)
func TestVictimSequencesIdentical(t *testing.T) {
	for _, v := range []VictimPolicy{Greedy, CostBenefit, WindowedGreedy, DChoices} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			idx, mIdx := runDifferential(t, v, false, 8)
			scan, mScan := runDifferential(t, v, true, 8)
			if len(idx) == 0 {
				t.Fatal("trace never triggered GC")
			}
			if len(idx) != len(scan) {
				t.Fatalf("index reclaimed %d victims, scan %d", len(idx), len(scan))
			}
			for i := range idx {
				if idx[i] != scan[i] {
					t.Fatalf("victim %d differs: index chose segment %d, scan %d", i, idx[i], scan[i])
				}
			}
			if mIdx.GCBlocks != mScan.GCBlocks || mIdx.SegmentsReclaimed != mScan.SegmentsReclaimed {
				t.Fatalf("migration totals diverged: index (%d blocks, %d segs), scan (%d, %d)",
					mIdx.GCBlocks, mIdx.SegmentsReclaimed, mScan.GCBlocks, mScan.SegmentsReclaimed)
			}
		})
	}
}

// TestRandomGreedyDistributionUnchanged: RandomGreedy's scan fallback
// and the index's Fisher-Yates fallback consume the rng differently,
// so only the WA distribution — not the byte sequence — is promised.
func TestRandomGreedyDistributionUnchanged(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		_, mIdx := runDifferential(t, RandomGreedy, false, seed)
		_, mScan := runDifferential(t, RandomGreedy, true, seed)
		ratio := mIdx.WA() / mScan.WA()
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("seed %d: index WA %.3f vs scan WA %.3f (ratio %.3f)", seed, mIdx.WA(), mScan.WA(), ratio)
		}
	}
}

// TestTrimGCStress interleaves trims with zipfian overwrites and
// cross-checks every invariant — including the victim-index recount —
// after every GC cycle.
func TestTrimGCStress(t *testing.T) {
	for _, v := range []VictimPolicy{Greedy, CostBenefit, WindowedGreedy} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Victim = v
			s := New(cfg, twoGroup{})
			rng := sim.NewRNG(0xbeef)
			for i := int64(0); i < cfg.UserBlocks; i++ {
				if err := s.WriteBlock(i, 0); err != nil {
					t.Fatal(err)
				}
			}
			cycles := s.Metrics().GCCycles
			checks := 0
			for i := 0; i < int(cfg.UserBlocks)*8; i++ {
				switch {
				case i%11 == 0:
					n := 1 + rng.Intn(16)
					lba := rng.Int63n(cfg.UserBlocks - int64(n))
					if err := s.Trim(lba, n, 0); err != nil {
						t.Fatal(err)
					}
				default:
					if err := s.WriteBlock(zipfLike(rng, cfg.UserBlocks), 0); err != nil {
						t.Fatal(err)
					}
				}
				if c := s.Metrics().GCCycles; c != cycles {
					cycles = c
					checks++
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("after GC cycle %d: %v", c, err)
					}
				}
			}
			if checks == 0 {
				t.Fatal("stress trace never triggered GC")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVictimIndexRebuildAfterRecovery: Recover bypasses the index
// hooks and rebuilds wholesale; the rebuilt index must satisfy the
// cross-check and keep GC running.
func TestVictimIndexRebuildAfterRecovery(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(7)
	for i := int64(0); i < cfg.UserBlocks; i++ {
		if err := s.WriteBlock(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < int(cfg.UserBlocks)*3; i++ {
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), 0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(&buf, cfg, twoGroup{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("recovered store: %v", err)
	}
	before := r.Metrics().SegmentsReclaimed
	for i := 0; i < int(cfg.UserBlocks)*3; i++ {
		if err := r.WriteBlock(rng.Int63n(cfg.UserBlocks), 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.Metrics().SegmentsReclaimed == before {
		t.Fatal("recovered store never ran GC")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("recovered store after GC: %v", err)
	}
}

// benchVictimStore builds a store with nsegs total segments, nearly
// all sealed with synthetic garbage counts, ready for selectVictims
// microbenchmarks (selection reads segment state and the index only).
func benchVictimStore(nsegs int, legacy bool, v VictimPolicy) *Store {
	cfg := smallConfig()
	cfg.Victim = v
	cfg.LegacyVictimScan = legacy
	// Invert totalSegments so the physical segment count lands near
	// nsegs: physBlocks = UserBlocks * 1.25, 32-block segments.
	cfg.UserBlocks = int64(nsegs-12) * 32 * 4 / 5
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(42)
	keep := 8 // leave a few segments free
	for i, seg := range s.segments[:len(s.segments)-keep] {
		seg.state = segSealed
		seg.written = s.segBlocks
		seg.valid = int(rng.Int63n(int64(s.segBlocks + 1)))
		seg.born = sim.WriteClock(i)
		seg.sealedW = sim.WriteClock(i + 1)
	}
	s.free = s.free[:0]
	for i := len(s.segments) - keep; i < len(s.segments); i++ {
		s.free = append(s.free, i)
	}
	s.w = sim.WriteClock(len(s.segments) + 16)
	s.rebuildVictimIndex()
	return s
}

// BenchmarkGCVictimSelection sweeps the segment count and compares the
// incremental index against the removed full scan: per-selection cost
// must stay flat for the index while the scan grows superlinearly.
func BenchmarkGCVictimSelection(b *testing.B) {
	for _, nsegs := range []int{1024, 4096, 16384, 65536} {
		for _, path := range []struct {
			name   string
			legacy bool
		}{{"index", false}, {"scan", true}} {
			for _, v := range []VictimPolicy{Greedy, CostBenefit} {
				b.Run(fmt.Sprintf("policy=%s/segs=%d/%s", v, nsegs, path.name), func(b *testing.B) {
					s := benchVictimStore(nsegs, path.legacy, v)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if victims := s.selectVictims(4); len(victims) == 0 {
							b.Fatal("no victims selected")
						}
					}
				})
			}
		}
	}
}
