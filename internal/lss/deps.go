package lss

import (
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// Deps bundles every external dependency a Store can be wired with,
// supplied once at construction: New(cfg, policy, Deps{...}). It
// replaces the former grown-by-accretion Set* methods, so a store's
// wiring is complete and immutable-by-default the moment it exists —
// no window where a half-configured store can serve traffic, and no
// ordering contract between setters (shard-before-telemetry used to be
// one). The runtime-mutable subset is exposed through Reconfigure.
type Deps struct {
	// Sink observes every chunk flush; the prototype routes these to
	// simulated devices.
	Sink ChunkSink
	// AuditSink is a second, independent chunk-flush observer reserved
	// for verification (the checker's byte mirror), so the oracle
	// composes with a device model holding the primary slot.
	AuditSink ChunkSink
	// Clock, when set, overrides the store's logical clock for
	// telemetry timestamps. The logical clock only advances at op
	// boundaries, so it is frozen during a synchronous GC cycle; a live
	// deployment injects a wall-derived clock so GC intervals have real
	// width.
	Clock func() sim.Time
	// GCGate is a cross-shard GC admission gate: acquire runs at the
	// start of every synchronous GC cycle (it may block) and the
	// release it returns runs when the cycle completes. Ignored under
	// Config.BackgroundGC, where the external pacer serializes GC
	// slices itself and a per-cycle token would be held across
	// preemption pauses.
	GCGate func() (release func())
	// Durable, when set, persists segment lifecycle transitions and
	// flushed chunks beneath the in-memory image (internal/segfile is
	// the file-backed implementation). Construction-time wiring only:
	// a durable backend must observe every transition from the first
	// append, so it cannot be attached through Reconfigure. The first
	// backend error latches the store (see Store.DurableErr).
	Durable DurableLog
	// Telemetry attaches live instrumentation (see attachTelemetry for
	// the contract). At most one set per store.
	Telemetry *telemetry.Set
	// ReclaimObserver is called with every reclaimed victim's segment
	// id, in reclaim order; the differential harness compares victim
	// sequences across selection paths through it.
	ReclaimObserver func(segID int)
	// Sharded marks the store as one partition of a sharded engine and
	// Shard as its id: telemetry metric names gain a {shard="id"}
	// label, GC intervals carry the shard, and the recorder is not
	// attached (only the sharded engine, which can hold every shard
	// lock, may drive recorder ticks). The zero value is a standalone
	// store.
	Sharded bool
	Shard   int
}

// applyDeps wires at most one Deps into a freshly built (or freshly
// recovered) store.
func (s *Store) applyDeps(deps []Deps) {
	switch len(deps) {
	case 0:
		return
	case 1:
	default:
		panic("lss: pass at most one Deps")
	}
	d := deps[0]
	s.sink = d.Sink
	s.auditSink = d.AuditSink
	s.clock = d.Clock
	s.gcGate = d.GCGate
	s.durable = d.Durable
	s.onReclaim = d.ReclaimObserver
	if d.Sharded {
		s.shard = int32(d.Shard)
	}
	if d.Telemetry != nil {
		s.attachTelemetry(d.Telemetry)
	}
}

// Runtime is the runtime-mutable slice of a store's wiring. Everything
// else in Deps (clock, gate, shard identity) is fixed for the store's
// lifetime.
type Runtime struct {
	// Sink and AuditSink may be attached or swapped after construction
	// (a device model attaches to an existing simulator; the checker's
	// mirror attaches to a store built elsewhere).
	Sink      ChunkSink
	AuditSink ChunkSink
	// Telemetry may attach late — notably after Recover, when the set
	// must see the recovered-segment counters. Re-attaching a different
	// set registers fresh instruments; attaching the same set is a
	// no-op; nil detaches the tracer and recorder.
	Telemetry *telemetry.Set
	// ReclaimObserver may be installed per-experiment.
	ReclaimObserver func(segID int)
	// Degraded toggles degraded-mode GC throttling (array column
	// failed, rebuild behind its watermark): cycles reclaim one victim
	// at a time and stop just above the low watermark. The flag is read
	// at every victim-batch boundary of the GC state machine, so a
	// toggle lands on an in-flight (possibly preempted) cycle at the
	// next batch rather than racing the cycle's latched target — the
	// former SetDegraded could not affect a running cycle at all.
	Degraded bool
}

// Reconfigure exposes the runtime-mutable wiring: fn receives the
// current values and the store adopts whatever fn leaves behind.
// Callers must serialize Reconfigure with all other store use, exactly
// as for mutating operations; changes take effect at the next
// operation or GC scheduling boundary.
func (s *Store) Reconfigure(fn func(*Runtime)) {
	r := Runtime{
		Sink:            s.sink,
		AuditSink:       s.auditSink,
		Telemetry:       s.tset,
		ReclaimObserver: s.onReclaim,
		Degraded:        s.degraded,
	}
	fn(&r)
	s.sink = r.Sink
	s.auditSink = r.AuditSink
	s.onReclaim = r.ReclaimObserver
	s.degraded = r.Degraded
	if r.Telemetry != s.tset {
		s.attachTelemetry(r.Telemetry)
	}
}
