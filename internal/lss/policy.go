package lss

import "adapt/internal/sim"

// Policy is a data-placement strategy: it decides which group receives
// each user-written and each GC-rewritten block. Implementations live
// in internal/placement (baselines) and internal/adaptcore (ADAPT).
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Groups returns the number of segment groups the policy uses.
	Groups() int
	// PlaceUser returns the group for a user-written block. w is the
	// write clock *before* this write; now is simulated wall time.
	PlaceUser(lba int64, now sim.Time, w sim.WriteClock) GroupID
	// PlaceGC returns the group for a valid block being migrated out of
	// a GC victim segment. from is the victim's group; segBorn and
	// segSealed are the victim segment's creation and seal write
	// clocks; w is the current write clock.
	PlaceGC(lba int64, from GroupID, segBorn, segSealed sim.WriteClock, w sim.WriteClock) GroupID
}

// SegmentObserver is an optional Policy extension notified when GC
// reclaims a segment. SepBIT and ADAPT use it to maintain segment
// lifespan estimates.
type SegmentObserver interface {
	// OnSegmentReclaimed reports a reclaimed segment: its group, birth
	// and seal write clocks, the number of still-valid blocks that were
	// migrated, and its total block slots.
	OnSegmentReclaimed(g GroupID, born, sealed, now sim.WriteClock, migrated, slots int)
}

// GroupSnapshot summarizes one group's open chunk and traffic history
// for timeout-advisory decisions. All counters are cumulative.
type GroupSnapshot struct {
	Group GroupID
	// OpenPending is the number of blocks buffered in the open chunk.
	OpenPending int
	// OpenUnpersisted is how many of those lack durability (have not
	// been flushed or shadow-persisted).
	OpenUnpersisted int
	// OpenFree is the remaining block slots in the open chunk.
	OpenFree int
	// UserBlocks, GCBlocks, ShadowBlocks, PaddingBlocks are cumulative
	// block counts written into this group.
	UserBlocks, GCBlocks, ShadowBlocks, PaddingBlocks int64
	// PaddingEvents counts padded chunk flushes in this group.
	PaddingEvents int64
	// SealedSegments is the group's current sealed segment count.
	SealedSegments int
}

// TimeoutAction tells the store how to handle an open chunk whose SLA
// window expired.
type TimeoutAction struct {
	// Kind selects the mechanism.
	Kind TimeoutKind
	// Target is the shadow group for ShadowInto.
	Target GroupID
	// Donors, for PadOwn, lists groups whose unpersisted pending blocks
	// may fill this chunk's padding space (cross-group aggregation in
	// the cold→hot piggyback direction). May be nil.
	Donors []GroupID
}

// TimeoutKind enumerates timeout handling mechanisms.
type TimeoutKind int

const (
	// PadOwn flushes the group's own open chunk, zero-padding the
	// remainder (optionally after filling from Donors). This is the
	// baseline behaviour.
	PadOwn TimeoutKind = iota
	// ShadowInto persists the group's unpersisted pending blocks as
	// shadow copies in Target's open chunk and flushes Target's chunk
	// immediately; the group's own chunk stays open with its timer
	// reset (lazy append, §3.3).
	ShadowInto
)

// Advisor is an optional Policy extension consulted on every SLA
// timeout of a chunk holding user-written blocks. ADAPT implements it
// to perform cross-group dynamic aggregation; baselines do not, so
// they always pad.
type Advisor interface {
	// OnChunkTimeout decides how to flush group g's expired open chunk.
	// groups holds snapshots of every group, indexed by GroupID.
	OnChunkTimeout(g GroupID, now sim.Time, groups []GroupSnapshot) TimeoutAction
}
