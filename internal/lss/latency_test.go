package lss

import (
	"testing"

	"adapt/internal/sim"
)

func TestLatencyFullChunkIsImmediate(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	// Four same-timestamp blocks fill one chunk: latency 0.
	for i := int64(0); i < 4; i++ {
		s.WriteBlock(i, 0)
	}
	l := s.Metrics().Latency
	if l.Count != 4 {
		t.Fatalf("latency samples = %d, want 4", l.Count)
	}
	if l.Max != 0 {
		t.Fatalf("max latency %v, want 0 for a full chunk", l.Max)
	}
	if l.Violations != 0 {
		t.Fatalf("violations = %d", l.Violations)
	}
}

func TestLatencyTimeoutHitsDeadline(t *testing.T) {
	cfg := smallConfig()
	cfg.SLAWindow = 100 * sim.Microsecond
	s := New(cfg, twoGroup{})
	s.WriteBlock(0, 0)
	// Next arrival far past the deadline: the flush is stamped at the
	// deadline, so the block's latency equals the window exactly.
	s.WriteBlock(1, 10*sim.Millisecond)
	l := s.Metrics().Latency
	if l.Count != 1 {
		t.Fatalf("latency samples = %d, want 1", l.Count)
	}
	if l.Max != cfg.SLAWindow {
		t.Fatalf("timeout latency %v, want exactly the window %v", l.Max, cfg.SLAWindow)
	}
	if l.Violations != 0 {
		t.Fatal("deadline flush counted as violation")
	}
}

func TestLatencyIntermediateCoalesce(t *testing.T) {
	cfg := smallConfig()
	cfg.SLAWindow = 100 * sim.Microsecond
	s := New(cfg, twoGroup{})
	// Blocks at t=0,30,60,90µs fill the 4-block chunk at t=90: the
	// first block waited 90µs, the last 0.
	for i := int64(0); i < 4; i++ {
		s.WriteBlock(i, sim.Time(i*30)*sim.Microsecond)
	}
	l := s.Metrics().Latency
	if l.Count != 4 {
		t.Fatalf("samples = %d", l.Count)
	}
	if l.Max != 90*sim.Microsecond {
		t.Fatalf("max = %v, want 90us", l.Max)
	}
	if want := sim.Time((90 + 60 + 30 + 0) / 4 * int64(sim.Microsecond)); l.Mean() != want {
		t.Fatalf("mean = %v, want %v", l.Mean(), want)
	}
}

func TestLatencyEverySampleWithinWindowUnderStress(t *testing.T) {
	cfg := smallConfig()
	cfg.SLAWindow = 100 * sim.Microsecond
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(17)
	now := sim.Time(0)
	for i := 0; i < 30000; i++ {
		now += sim.Time(rng.Int63n(250)) * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
	}
	l := s.Metrics().Latency
	if l.Count == 0 {
		t.Fatal("no latency samples")
	}
	// Before Drain every persisted block met the SLA by construction.
	if l.Violations != 0 {
		t.Fatalf("%d SLA violations during normal operation", l.Violations)
	}
	if l.Max > cfg.SLAWindow {
		t.Fatalf("max latency %v exceeds the window", l.Max)
	}
	if q := l.Quantile(0.5); q <= 0 || q > l.Quantile(0.99)*2 {
		t.Fatalf("quantiles inconsistent: p50=%v p99=%v", q, l.Quantile(0.99))
	}
}

func TestLatencyShadowPersistCounted(t *testing.T) {
	adv := &scriptedAdvisor3{}
	adv.action = func(g GroupID) TimeoutAction {
		if g == 0 {
			return TimeoutAction{Kind: ShadowInto, Target: 1}
		}
		return TimeoutAction{Kind: PadOwn}
	}
	cfg := smallConfig()
	cfg.SLAWindow = 100 * sim.Microsecond
	s := New(cfg, adv)
	s.WriteBlock(0, 0) // group 0
	s.WriteBlock(2, 10*sim.Millisecond)
	l := s.Metrics().Latency
	// lba 0 was shadow-persisted at its deadline: one sample at window.
	if l.Count != 1 || l.Max != cfg.SLAWindow {
		t.Fatalf("shadow persistence latency wrong: count=%d max=%v", l.Count, l.Max)
	}
	// The lazily flushed original must NOT produce a second sample
	// later: fill the hot chunk and drain.
	for i := int64(4); i < 10; i += 2 {
		s.WriteBlock(i, 10*sim.Millisecond)
	}
	s.Drain(20 * sim.Millisecond)
	l = s.Metrics().Latency
	var total int64
	for _, g := range s.Metrics().PerGroup {
		total += g.UserBlocks
	}
	if l.Count != total {
		t.Fatalf("latency samples %d != user blocks %d (double counting?)", l.Count, total)
	}
}

func TestLatencyStatsQuantileEdges(t *testing.T) {
	var l LatencyStats
	if l.Quantile(0.5) != 0 || l.Mean() != 0 {
		t.Fatal("empty stats not zero")
	}
	l.record(3*sim.Microsecond, 100*sim.Microsecond)
	if got := l.Quantile(1.5); got <= 0 {
		t.Fatalf("clamped quantile = %v", got)
	}
	if got := l.Quantile(-1); got <= 0 {
		t.Fatalf("clamped low quantile = %v", got)
	}
	l.record(500*sim.Microsecond, 100*sim.Microsecond)
	if l.Violations != 1 {
		t.Fatalf("violations = %d, want 1", l.Violations)
	}
}
