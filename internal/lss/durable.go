package lss

import (
	"adapt/internal/sim"
)

// DurableLog is the persistence seam beneath the store: a backend that
// records segment lifecycle transitions and flushed chunks durably
// (internal/segfile implements it over a directory of segment files).
// The store calls it synchronously from inside its own mutation paths,
// so implementations must not call back into the store.
//
// The contract mirrors the store's in-memory durability model exactly:
// a chunk is the unit of durability (AppendChunk fires once per flushed
// chunk, never for the buffered open-chunk tail), segments seal
// write-ahead (every chunk of a segment is appended — and, under a
// strict sync mode, synced — before SealSegment runs), and FreeSegment
// destroys the durable image of a reclaimed victim only after GC has
// migrated its live blocks into chunks already appended through this
// same interface. A nil error from a call means the transition is
// durable to the backend's configured sync discipline; the first
// non-nil error latches the store read-only-durable (see DurableErr).
type DurableLog interface {
	// OpenSegment records that segment id began a new incarnation for
	// group at write clock born. It is called before any AppendChunk
	// for the incarnation.
	OpenSegment(id int, group GroupID, born sim.WriteClock) error
	// AppendChunk records one flushed chunk. The slices in c alias
	// store memory and must not be retained past the call.
	AppendChunk(c DurableChunk) error
	// SealSegment records that segment id sealed at write clock
	// sealedW. All SegmentChunks chunks have been appended first.
	SealSegment(id int, sealedW sim.WriteClock) error
	// FreeSegment destroys the durable image of segment id after GC
	// reclaimed it. After it returns nil, recovery must never surface
	// the incarnation's slots again.
	FreeSegment(id int) error
	// Checkpoint persists the store clocks (write clock, append
	// sequence, simulated time) as a recovery floor.
	Checkpoint(w sim.WriteClock, appendSeq int64, now sim.Time) error
}

// DurableChunk is one flushed chunk as handed to DurableLog.AppendChunk:
// the physical location, the clocks at flush time, and the per-slot
// address encoding and append versions. LBAs uses the store's slot
// encoding (primary addresses >= 0, padding, shadow copies); decode
// with DecodeSlot. len(LBAs) == len(Vers) == Config.ChunkBlocks.
type DurableChunk struct {
	Segment int
	Chunk   int
	Group   GroupID
	W       sim.WriteClock
	Now     sim.Time
	LBAs    []int64
	Vers    []int64
}

// DecodeSlot decodes a slot value from DurableChunk.LBAs (or a
// checkpoint image): the block address it refers to — primary or
// shadow — and whether the slot carries data at all (padding does
// not).
func DecodeSlot(v int64) (lba int64, ok bool) { return decodeSlot(v) }

// DurableErr returns the latched durable-backend error, nil while the
// backend is healthy (or absent). The first DurableLog call that fails
// latches the store: the in-memory image stays internally consistent,
// but every subsequent Write/WriteBlock/Trim returns the error so no
// further acknowledgements can outrun what the backend persisted.
func (s *Store) DurableErr() error { return s.durableErr }

// durableOpen notifies the backend of a fresh segment incarnation.
func (s *Store) durableOpen(seg *segment) {
	if s.durable == nil || s.durableErr != nil {
		return
	}
	if err := s.durable.OpenSegment(seg.id, seg.group, seg.born); err != nil {
		s.durableErr = err
	}
}

// durableAppend hands gr's just-flushed chunk to the backend.
func (s *Store) durableAppend(gr *group) {
	if s.durable == nil || s.durableErr != nil {
		return
	}
	seg := gr.open
	ci := seg.written/s.chunkBlocks - 1
	start := ci * s.chunkBlocks
	err := s.durable.AppendChunk(DurableChunk{
		Segment: seg.id,
		Chunk:   ci,
		Group:   gr.id,
		W:       s.w,
		Now:     s.now,
		LBAs:    seg.lbas[start : start+s.chunkBlocks],
		Vers:    seg.vers[start : start+s.chunkBlocks],
	})
	if err != nil {
		s.durableErr = err
	}
}

// durableSeal notifies the backend that seg sealed.
func (s *Store) durableSeal(seg *segment) {
	if s.durable == nil || s.durableErr != nil {
		return
	}
	if err := s.durable.SealSegment(seg.id, seg.sealedW); err != nil {
		s.durableErr = err
	}
}

// durableFree notifies the backend that seg was reclaimed.
func (s *Store) durableFree(seg *segment) {
	if s.durable == nil || s.durableErr != nil {
		return
	}
	if err := s.durable.FreeSegment(seg.id); err != nil {
		s.durableErr = err
	}
}

// durableCheckpoint persists the clock floor.
func (s *Store) durableCheckpoint() {
	if s.durable == nil || s.durableErr != nil {
		return
	}
	if err := s.durable.Checkpoint(s.w, s.appendSeq, s.now); err != nil {
		s.durableErr = err
	}
}
