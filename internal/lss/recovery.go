package lss

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"adapt/internal/sim"
)

// Checkpointing and crash recovery. A log-structured store's durable
// state is exactly its flushed segment summaries: per-slot block
// addresses plus append versions. WriteCheckpoint serializes that
// state; Recover rebuilds a store from it, reconstructing the LBA
// mapping by choosing, for each block, the durable copy with the
// highest append version — the roll-forward a real LSS performs after
// a crash. Blocks buffered in open chunks that were never flushed are
// lost (crash semantics) unless a shadow copy persisted them
// (§3.3's durability argument for shadow append), in which case the
// mapping recovers from the shadow slot.

var ckptMagic = []byte("ADPTCK01")

// ErrBadCheckpoint reports a malformed or mismatched checkpoint.
var ErrBadCheckpoint = errors.New("lss: bad checkpoint")

// WriteCheckpoint serializes the store's durable state. Only flushed
// chunks are included: pending blocks in open chunks are not durable
// and do not survive (exactly as in a crash; call Drain first for a
// clean shutdown image).
func (s *Store) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	// Geometry fingerprint, validated on recovery.
	for _, v := range []uint64{
		uint64(s.cfg.BlockSize), uint64(s.cfg.ChunkBlocks),
		uint64(s.cfg.SegmentChunks), uint64(s.cfg.UserBlocks),
		uint64(len(s.segments)), uint64(len(s.groups)),
	} {
		if err := putU(v); err != nil {
			return err
		}
	}
	if err := putU(uint64(s.w)); err != nil {
		return err
	}
	if err := putU(uint64(s.appendSeq)); err != nil {
		return err
	}
	if err := putU(uint64(s.now)); err != nil {
		return err
	}
	for _, seg := range s.segments {
		flushed := seg.written
		if seg.state == segOpen {
			flushed -= seg.written % s.chunkBlocks // drop the unflushed tail
		}
		if err := putU(uint64(seg.state)); err != nil {
			return err
		}
		if err := putU(uint64(seg.group)); err != nil {
			return err
		}
		if err := putU(uint64(seg.born)); err != nil {
			return err
		}
		if err := putU(uint64(seg.sealedW)); err != nil {
			return err
		}
		if err := putU(uint64(flushed)); err != nil {
			return err
		}
		for i := 0; i < flushed; i++ {
			if err := putI(seg.lbas[i]); err != nil {
				return err
			}
			if err := putI(seg.vers[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Recover rebuilds a store from a checkpoint written by
// WriteCheckpoint. cfg and policy must match the original geometry
// (the policy's own state is rebuilt cold, as after any restart).
// Traffic metrics restart from zero; only durable state is restored.
// deps, if given, is wired in after the rebuild so an attached
// telemetry set observes the recovered-segment counters.
func Recover(r io.Reader, cfg Config, p Policy, deps ...Deps) (*Store, error) {
	s := New(cfg, p)
	br := bufio.NewReader(r)
	head := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if string(head) != string(ckptMagic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, head)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getI := func() (int64, error) { return binary.ReadVarint(br) }

	want := []uint64{
		uint64(s.cfg.BlockSize), uint64(s.cfg.ChunkBlocks),
		uint64(s.cfg.SegmentChunks), uint64(s.cfg.UserBlocks),
		uint64(len(s.segments)), uint64(len(s.groups)),
	}
	names := []string{"block size", "chunk blocks", "segment chunks", "user blocks", "segments", "groups"}
	for i, w := range want {
		got, err := getU()
		if err != nil {
			return nil, fmt.Errorf("%w: geometry: %v", ErrBadCheckpoint, err)
		}
		if got != w {
			return nil, fmt.Errorf("%w: %s %d, store built with %d", ErrBadCheckpoint, names[i], got, w)
		}
	}
	wclock, err := getU()
	if err != nil {
		return nil, fmt.Errorf("%w: write clock: %v", ErrBadCheckpoint, err)
	}
	seq, err := getU()
	if err != nil {
		return nil, fmt.Errorf("%w: append seq: %v", ErrBadCheckpoint, err)
	}
	now, err := getU()
	if err != nil {
		return nil, fmt.Errorf("%w: clock: %v", ErrBadCheckpoint, err)
	}
	s.w = sim.WriteClock(wclock)
	s.appendSeq = int64(seq)
	s.now = sim.Time(now)

	s.free = s.free[:0]
	bestVer := make([]int64, cfg.UserBlocks)
	for _, seg := range s.segments {
		st, err := getU()
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d state: %v", ErrBadCheckpoint, seg.id, err)
		}
		grp, err := getU()
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d group: %v", ErrBadCheckpoint, seg.id, err)
		}
		born, err := getU()
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d born: %v", ErrBadCheckpoint, seg.id, err)
		}
		sealedW, err := getU()
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d sealedW: %v", ErrBadCheckpoint, seg.id, err)
		}
		flushed, err := getU()
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d flushed: %v", ErrBadCheckpoint, seg.id, err)
		}
		if flushed > uint64(s.segBlocks) {
			return nil, fmt.Errorf("%w: segment %d flushed %d > %d", ErrBadCheckpoint, seg.id, flushed, s.segBlocks)
		}
		if segState(st) > segSealed || int(grp) >= len(s.groups) {
			return nil, fmt.Errorf("%w: segment %d state/group out of range", ErrBadCheckpoint, seg.id)
		}
		if segState(st) == segOpen && int(flushed)%s.chunkBlocks != 0 {
			// WriteCheckpoint truncates open segments to the flushed-chunk
			// boundary; a ragged count would corrupt chunk accounting on
			// the next append.
			return nil, fmt.Errorf("%w: open segment %d flushed %d not chunk-aligned", ErrBadCheckpoint, seg.id, flushed)
		}
		if segState(st) == segSealed && int(flushed) != s.segBlocks {
			// Segments seal only when full; a short sealed segment would
			// sit in the GC candidate set with slots that never existed.
			return nil, fmt.Errorf("%w: sealed segment %d has %d/%d slots", ErrBadCheckpoint, seg.id, flushed, s.segBlocks)
		}
		seg.state = segState(st)
		seg.group = GroupID(grp)
		seg.born = sim.WriteClock(born)
		seg.sealedW = sim.WriteClock(sealedW)
		seg.written = int(flushed)
		seg.valid = 0
		for i := 0; i < int(flushed); i++ {
			v, err := getI()
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d slot %d: %v", ErrBadCheckpoint, seg.id, i, err)
			}
			ver, err := getI()
			if err != nil {
				return nil, fmt.Errorf("%w: segment %d ver %d: %v", ErrBadCheckpoint, seg.id, i, err)
			}
			seg.lbas[i] = v
			seg.vers[i] = ver
			lba, ok := decodeSlot(v)
			if !ok {
				continue
			}
			if lba < 0 || lba >= cfg.UserBlocks {
				return nil, fmt.Errorf("%w: segment %d slot %d lba %d out of range", ErrBadCheckpoint, seg.id, i, lba)
			}
			if seg.state == segFree {
				// Reclaimed segments keep their stale slot images but hold
				// no durable data. A stale shadow copy can outversion the
				// primary it duplicated (the shadow appends after it), never
				// a newer write, so skipping free segments loses nothing —
				// and letting one win would map an LBA into the free pool.
				continue
			}
			// Roll-forward: the highest-versioned durable copy wins.
			if ver > bestVer[lba] {
				if old := s.mapping[lba]; old >= 0 {
					s.segments[old/int64(s.segBlocks)].valid--
				}
				bestVer[lba] = ver
				s.mapping[lba] = int64(seg.id)*int64(s.segBlocks) + int64(i)
				seg.valid++
			}
		}
	}
	// Rebuild the free pool and the groups' open segments.
	for i := len(s.segments) - 1; i >= 0; i-- {
		seg := s.segments[i]
		if seg.state != segFree {
			s.recoveredSegments++
			s.recoveredBlocks += int64(seg.valid)
		}
		switch seg.state {
		case segFree:
			s.free = append(s.free, seg.id)
		case segOpen:
			gr := s.groups[seg.group]
			if gr.open != nil {
				return nil, fmt.Errorf("%w: group %d has two open segments", ErrBadCheckpoint, seg.group)
			}
			gr.open = seg
			// A fully written open segment (tail truncation landed on
			// the segment boundary) seals immediately.
			if seg.written == s.segBlocks {
				s.seal(gr)
			}
		}
	}
	// Segment state was rebuilt wholesale above, bypassing the victim
	// index hooks; reconstruct the index (and seal sequences) from it.
	s.rebuildVictimIndex()
	s.applyDeps(deps)
	return s, nil
}
