package lss

import (
	"fmt"
	"strings"
	"testing"

	"adapt/internal/sim"
)

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

func TestMetricsDerivedEdgeCases(t *testing.T) {
	t.Run("zero", func(t *testing.T) {
		var m Metrics
		if got := m.WA(); got != 1 {
			t.Errorf("WA of empty metrics = %v, want 1", got)
		}
		if got := m.EffectiveWA(); got != 1 {
			t.Errorf("EffectiveWA of empty metrics = %v, want 1", got)
		}
		if got := m.PaddingRatio(); got != 0 {
			t.Errorf("PaddingRatio of empty metrics = %v, want 0", got)
		}
	})
	t.Run("padding-only", func(t *testing.T) {
		// No user blocks but padding traffic (e.g. a drain right after
		// recovery): the ratios must not divide by zero.
		m := Metrics{PaddingBlocks: 48}
		if got := m.WA(); got != 1 {
			t.Errorf("WA = %v, want 1", got)
		}
		if got := m.EffectiveWA(); got != 1 {
			t.Errorf("EffectiveWA = %v, want 1", got)
		}
		if got := m.PaddingRatio(); got != 1 {
			t.Errorf("PaddingRatio = %v, want 1", got)
		}
	})
	t.Run("mixed", func(t *testing.T) {
		m := Metrics{UserBlocks: 100, GCBlocks: 50, ShadowBlocks: 10, PaddingBlocks: 40}
		if got := m.WA(); got != 1.5 {
			t.Errorf("WA = %v, want 1.5", got)
		}
		if got := m.EffectiveWA(); got != 2 {
			t.Errorf("EffectiveWA = %v, want 2", got)
		}
		if got := m.PaddingRatio(); got != 0.2 {
			t.Errorf("PaddingRatio = %v, want 0.2", got)
		}
		if got := m.TotalBlocks(); got != 200 {
			t.Errorf("TotalBlocks = %v, want 200", got)
		}
	})
}

// TestMetricsStringRoundTrip checks String against a live run: every
// traffic counter, GC counter, and latency figure the struct tracks
// must appear in the rendering with its current value.
func TestMetricsStringRoundTrip(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	rng := sim.NewRNG(7)
	now := sim.Time(0)
	for lba := int64(0); lba < 4<<10; lba++ {
		if err := s.WriteBlock(lba, now); err != nil {
			t.Fatal(err)
		}
	}
	// Gaps wider than SLAWindow/chunk so some chunks hit the deadline
	// and pad, exercising every counter in the rendering.
	for i := 0; i < 20<<10; i++ {
		now += 60 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(4<<10), now); err != nil {
			t.Fatal(err)
		}
	}
	s.Read(1, 3, now)
	if err := s.Trim(10, 5, now); err != nil {
		t.Fatal(err)
	}
	s.Drain(now + sim.Second)
	m := s.Metrics()
	out := m.String()

	want := []string{
		f("user=%d", m.UserBlocks),
		f("gc=%d", m.GCBlocks),
		f("shadow=%d", m.ShadowBlocks),
		f("pad=%d", m.PaddingBlocks),
		f("read=%d", m.ReadBlocks),
		f("trim=%d", m.TrimmedBlocks),
		f("WA=%.3f", m.WA()),
		f("effWA=%.3f", m.EffectiveWA()),
		f("padRatio=%.3f", m.PaddingRatio()),
		f("gcCycles=%d", m.GCCycles),
		f("throttled=%d", m.ThrottledGCCycles),
		f("reclaimed=%d", m.SegmentsReclaimed),
		f("scanned=%d", m.GCScannedBlocks),
		f("latMean=%v", m.Latency.Mean()),
		f("latP99=%v", m.Latency.Quantile(0.99)),
		f("latMax=%v", m.Latency.Max),
		f("slaViolations=%d", m.Latency.Violations),
	}
	for _, frag := range want {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q:\n%s", frag, out)
		}
	}
	if m.ReadBlocks != 3 {
		t.Errorf("ReadBlocks = %d, want 3", m.ReadBlocks)
	}
	if m.TrimmedBlocks != 5 {
		t.Errorf("TrimmedBlocks = %d, want 5", m.TrimmedBlocks)
	}
	if m.GCBlocks == 0 || m.PaddingBlocks == 0 {
		t.Errorf("expected GC and padding traffic in stress run: %s", out)
	}
}
