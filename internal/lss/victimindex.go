package lss

import (
	"fmt"
	"sort"

	"adapt/internal/sim"
)

// Incremental GC victim index.
//
// Victim selection used to rescan and re-sort every segment on every
// GC cycle — an O(S) + O(S log S) cost paid on the write path at each
// low-water allocation, growing with array size. The store now keeps
// the selection state incrementally, updated at the three mutation
// points of a sealed segment's garbage count (block invalidation in
// appendBlock/Trim, segment seal, segment reclaim), so every victim
// policy answers its query without touching the segment array:
//
//   - Garbage buckets: sealed segments bucketed by invalid-block count
//     (0..segBlocks). Each bucket is a lazy-deletion min-heap keyed by
//     (sealedW, id) — the canonical victim tie-break order — so the
//     head of the highest non-empty bucket is the Greedy victim, and
//     merging the per-bucket heads by exact cost-benefit score yields
//     the CostBenefit victims (utilization is constant within a
//     bucket, so the cost-benefit order there is the static seal-clock
//     order; age drift over the write clock cannot reorder a bucket).
//   - A seal ring: segments in seal order. The seal sequence is
//     monotone, so insertion order *is* window order and
//     WindowedGreedy needs no per-cycle sort.
//   - Per-segment epochs ("stamps"): every membership or bucket change
//     bumps the segment's stamp. Heap entries carry the stamp they
//     were pushed under (ring entries carry the seal sequence) and are
//     discarded lazily when they surface with a stale stamp.
//
// Every hook is O(log S) worst case (one heap push); queries are O(1)
// amortized for Greedy and the DChoices/RandomGreedy sampling paths,
// O(segBlocks) per victim for CostBenefit, and O(window) for
// WindowedGreedy — all independent of the total segment count.
// CheckInvariants cross-checks the whole structure against a recount,
// so every stress test also validates the incremental maintenance.

// viEntry is one bucket-heap entry. Ordering (sealedW, seg) ascending
// matches the canonical tie-break: among equal-garbage segments the
// oldest-sealed wins, then the lowest id.
type viEntry struct {
	sealedW sim.WriteClock
	seg     int32
	stamp   uint32
}

// viRingEntry is one seal-ring entry; seq is the segment's seal
// sequence at insertion, so a reclaimed-and-resealed segment
// invalidates its old entry even within a single GC cycle.
type viRingEntry struct {
	seg int32
	seq int64
}

type victimIndex struct {
	segBlocks int

	// Per-segment state.
	stamp   []uint32 // bucket-membership epoch; bumped on every change
	sealSeq []int64  // seal incarnation of the current membership
	member  []bool   // tracked (== sealed)
	bucket  []int    // garbage count while member

	// Garbage buckets, indexed by invalid-block count.
	buckets [][]viEntry
	liveCnt []int // live members per bucket
	maxG    int   // no live member sits in a bucket above maxG

	// Seal ring (FIFO in seal order) for WindowedGreedy.
	ring     []viRingEntry
	ringHead int // entries before ringHead are permanently stale
	ringLive int

	// probes counts index entries examined during selection; the store
	// drains deltas into Metrics.GCScannedBlocks.
	probes int64
}

func newVictimIndex(nsegs, segBlocks int) *victimIndex {
	return &victimIndex{
		segBlocks: segBlocks,
		stamp:     make([]uint32, nsegs),
		sealSeq:   make([]int64, nsegs),
		member:    make([]bool, nsegs),
		bucket:    make([]int, nsegs),
		buckets:   make([][]viEntry, segBlocks+1),
		liveCnt:   make([]int, segBlocks+1),
	}
}

// liveEntry reports whether a heap entry still describes its segment's
// current bucket membership. Stamps bump on every membership change,
// so a match implies the segment is sealed and sits in the bucket the
// entry was pushed to.
func (vi *victimIndex) liveEntry(e viEntry) bool { return vi.stamp[e.seg] == e.stamp }

func (vi *victimIndex) liveRingEntry(e viRingEntry) bool {
	return vi.member[e.seg] && vi.sealSeq[e.seg] == e.seq
}

func viLess(a, b viEntry) bool {
	if a.sealedW != b.sealedW {
		return a.sealedW < b.sealedW
	}
	return a.seg < b.seg
}

func viSiftDown(h []viEntry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && viLess(h[l], h[m]) {
			m = l
		}
		if r < n && viLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (vi *victimIndex) heapPush(g int, e viEntry) {
	h := append(vi.buckets[g], e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !viLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	vi.buckets[g] = h
}

func (vi *victimIndex) heapPop(g int) viEntry {
	h := vi.buckets[g]
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	viSiftDown(h, 0)
	vi.buckets[g] = h
	return top
}

// compact drops stale entries from bucket g in place and restores the
// heap property. Called when stale entries dominate, so the amortized
// cost per discarded entry is O(1).
func (vi *victimIndex) compact(g int) {
	h := vi.buckets[g][:0]
	for _, e := range vi.buckets[g] {
		if vi.liveEntry(e) {
			h = append(h, e)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		viSiftDown(h, i)
	}
	vi.buckets[g] = h
}

func (vi *victimIndex) compactRing() {
	r := vi.ring[:0]
	for _, e := range vi.ring {
		if vi.liveRingEntry(e) {
			r = append(r, e)
		}
	}
	vi.ring = r
	vi.ringHead = 0
}

// enter places a segment into bucket g under a fresh stamp.
func (vi *victimIndex) enter(seg *segment, g int) {
	id := seg.id
	vi.stamp[id]++
	vi.bucket[id] = g
	vi.liveCnt[g]++
	if g > vi.maxG {
		vi.maxG = g
	}
	if len(vi.buckets[g]) >= 2*vi.liveCnt[g]+16 {
		vi.compact(g)
	}
	vi.heapPush(g, viEntry{seg.sealedW, int32(id), vi.stamp[id]})
}

// onSeal registers a freshly sealed segment (seg.sealSeq already
// assigned by the store).
func (vi *victimIndex) onSeal(seg *segment) {
	id := seg.id
	vi.member[id] = true
	vi.sealSeq[id] = seg.sealSeq
	vi.enter(seg, seg.written-seg.valid)
	if len(vi.ring) >= 2*vi.ringLive+64 {
		vi.compactRing()
	}
	vi.ring = append(vi.ring, viRingEntry{int32(id), seg.sealSeq})
	vi.ringLive++
}

// onInvalidate moves a sealed segment one bucket up after one of its
// blocks turned to garbage (seg.valid already decremented).
func (vi *victimIndex) onInvalidate(seg *segment) {
	id := seg.id
	if !vi.member[id] {
		return // callers gate on segSealed; defensive
	}
	vi.liveCnt[vi.bucket[id]]--
	vi.enter(seg, vi.bucket[id]+1)
}

// onFree removes a reclaimed segment from the index. Its heap and ring
// entries go stale (stamp bump / member clear) and are dropped lazily.
func (vi *victimIndex) onFree(seg *segment) {
	id := seg.id
	if !vi.member[id] {
		return
	}
	vi.liveCnt[vi.bucket[id]]--
	vi.member[id] = false
	vi.stamp[id]++
	vi.ringLive--
}

// topGarbage normalizes and returns the highest non-empty bucket.
// Amortized O(1): maxG only rises on pushes.
func (vi *victimIndex) topGarbage() int {
	for vi.maxG > 0 && vi.liveCnt[vi.maxG] == 0 {
		vi.maxG--
	}
	return vi.maxG
}

// peekLive returns bucket g's live head without removing it,
// permanently discarding any stale entries above it.
func (vi *victimIndex) peekLive(g int) (viEntry, bool) {
	for len(vi.buckets[g]) > 0 {
		e := vi.buckets[g][0]
		vi.probes++
		if vi.liveEntry(e) {
			return e, true
		}
		vi.heapPop(g)
	}
	return viEntry{}, false
}

// popLive removes and returns bucket g's live head.
func (vi *victimIndex) popLive(g int) (viEntry, bool) {
	if _, ok := vi.peekLive(g); !ok {
		return viEntry{}, false
	}
	return vi.heapPop(g), true
}

// windowEntries returns up to w live segment ids in seal order — the
// WindowedGreedy candidate window — advancing the ring head past any
// stale prefix permanently.
func (vi *victimIndex) windowEntries(w int) []int32 {
	for vi.ringHead < len(vi.ring) && !vi.liveRingEntry(vi.ring[vi.ringHead]) {
		vi.ringHead++
		vi.probes++
	}
	out := make([]int32, 0, w)
	for i := vi.ringHead; i < len(vi.ring) && len(out) < w; i++ {
		vi.probes++
		if e := vi.ring[i]; vi.liveRingEntry(e) {
			out = append(out, e.seg)
		}
	}
	return out
}

// rebuildVictimIndex reconstructs the index — and the segments' seal
// sequence numbers — from raw segment state, in the canonical recovery
// order (sealedW, then id). Recovery uses it after rebuilding segment
// state wholesale; normal operation maintains the index incrementally
// and CheckInvariants verifies that maintenance against a recount.
func (s *Store) rebuildVictimIndex() {
	vi := s.vidx
	for i := range vi.member {
		vi.member[i] = false
		vi.stamp[i]++
	}
	for g := range vi.buckets {
		vi.buckets[g] = vi.buckets[g][:0]
		vi.liveCnt[g] = 0
	}
	vi.maxG = 0
	vi.ring = vi.ring[:0]
	vi.ringHead = 0
	vi.ringLive = 0

	var sealed []*segment
	for _, seg := range s.segments {
		if seg.state == segSealed {
			sealed = append(sealed, seg)
		}
	}
	sort.Slice(sealed, func(i, j int) bool {
		if sealed[i].sealedW != sealed[j].sealedW {
			return sealed[i].sealedW < sealed[j].sealedW
		}
		return sealed[i].id < sealed[j].id
	})
	s.sealCount = 0
	for _, seg := range sealed {
		s.sealCount++
		seg.sealSeq = s.sealCount
		vi.onSeal(seg)
	}
}

// check cross-validates the index against a recount of segment state;
// CheckInvariants calls it so every stress test exercises the
// incremental maintenance. O(segments + heap entries).
func (vi *victimIndex) check(segs []*segment) error {
	for _, seg := range segs {
		id := seg.id
		if seg.state == segSealed {
			if !vi.member[id] {
				return fmt.Errorf("victim index: sealed segment %d not a member", id)
			}
			if g := seg.written - seg.valid; vi.bucket[id] != g {
				return fmt.Errorf("victim index: segment %d in bucket %d, garbage recount %d", id, vi.bucket[id], g)
			}
			if vi.sealSeq[id] != seg.sealSeq {
				return fmt.Errorf("victim index: segment %d seal seq %d, segment says %d", id, vi.sealSeq[id], seg.sealSeq)
			}
		} else if vi.member[id] {
			return fmt.Errorf("victim index: segment %d is a member in state %d", id, seg.state)
		}
	}
	// Exactly one live heap entry per member, in the right bucket, with
	// the right seal clock; live counts match a recount.
	liveSeen := make([]int, len(segs))
	for g, h := range vi.buckets {
		live := 0
		for _, e := range h {
			if !vi.liveEntry(e) {
				continue
			}
			live++
			liveSeen[e.seg]++
			if vi.bucket[e.seg] != g {
				return fmt.Errorf("victim index: live entry for segment %d in bucket %d, state says %d", e.seg, g, vi.bucket[e.seg])
			}
			if e.sealedW != segs[e.seg].sealedW {
				return fmt.Errorf("victim index: entry for segment %d carries sealedW %d, segment says %d", e.seg, e.sealedW, segs[e.seg].sealedW)
			}
		}
		if live != vi.liveCnt[g] {
			return fmt.Errorf("victim index: bucket %d live count %d, recount %d", g, vi.liveCnt[g], live)
		}
		if g > vi.maxG && live > 0 {
			return fmt.Errorf("victim index: live bucket %d above maxG hint %d", g, vi.maxG)
		}
	}
	for _, seg := range segs {
		want := 0
		if seg.state == segSealed {
			want = 1
		}
		if liveSeen[seg.id] != want {
			return fmt.Errorf("victim index: segment %d has %d live heap entries, want %d", seg.id, liveSeen[seg.id], want)
		}
	}
	// Ring: exactly one live entry per sealed segment, in seal order,
	// none before the head.
	ringSeen := make([]int, len(segs))
	var lastSeq int64
	live := 0
	for i, e := range vi.ring {
		if !vi.liveRingEntry(e) {
			continue
		}
		if i < vi.ringHead {
			return fmt.Errorf("victim index: live ring entry for segment %d before head", e.seg)
		}
		live++
		ringSeen[e.seg]++
		if e.seq <= lastSeq {
			return fmt.Errorf("victim index: ring out of seal order at segment %d", e.seg)
		}
		lastSeq = e.seq
	}
	if live != vi.ringLive {
		return fmt.Errorf("victim index: ring live count %d, recount %d", vi.ringLive, live)
	}
	for _, seg := range segs {
		want := 0
		if seg.state == segSealed {
			want = 1
		}
		if ringSeen[seg.id] != want {
			return fmt.Errorf("victim index: segment %d has %d live ring entries, want %d", seg.id, ringSeen[seg.id], want)
		}
	}
	return nil
}
