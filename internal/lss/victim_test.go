package lss

import (
	"testing"

	"adapt/internal/sim"
)

func runVictim(t *testing.T, v VictimPolicy) *Metrics {
	t.Helper()
	cfg := smallConfig()
	cfg.Victim = v
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(8)
	for i := int64(0); i < cfg.UserBlocks; i++ {
		if err := s.WriteBlock(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < int(cfg.UserBlocks)*6; i++ {
		var lba int64
		if rng.Float64() < 0.9 {
			lba = rng.Int63n(cfg.UserBlocks / 10)
		} else {
			lba = rng.Int63n(cfg.UserBlocks)
		}
		if err := s.WriteBlock(lba, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveBlocks(); got != cfg.UserBlocks {
		t.Fatalf("%s lost data: %d live", v, got)
	}
	return s.Metrics()
}

func TestAllVictimPoliciesReclaim(t *testing.T) {
	for _, v := range []VictimPolicy{Greedy, CostBenefit, DChoices, WindowedGreedy, RandomGreedy} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			m := runVictim(t, v)
			if m.SegmentsReclaimed == 0 {
				t.Fatalf("%s never reclaimed", v)
			}
			if m.WA() < 1 || m.WA() > 20 {
				t.Fatalf("%s implausible WA %f", v, m.WA())
			}
		})
	}
}

// TestGreedyBeatsRandom: on a skewed workload, informed selection must
// outperform uniform random selection.
func TestGreedyBeatsRandom(t *testing.T) {
	greedy := runVictim(t, Greedy)
	random := runVictim(t, RandomGreedy)
	if greedy.WA() >= random.WA() {
		t.Fatalf("greedy WA %.3f not better than random %.3f", greedy.WA(), random.WA())
	}
}

// TestDChoicesApproachesGreedy: sampling d segments should land
// between random and exact greedy.
func TestDChoicesApproachesGreedy(t *testing.T) {
	greedy := runVictim(t, Greedy)
	dchoice := runVictim(t, DChoices)
	random := runVictim(t, RandomGreedy)
	if dchoice.WA() > random.WA()*1.05 {
		t.Fatalf("d-choices WA %.3f worse than random %.3f", dchoice.WA(), random.WA())
	}
	if dchoice.WA() < greedy.WA()*0.8 {
		t.Fatalf("d-choices WA %.3f implausibly beats exact greedy %.3f", dchoice.WA(), greedy.WA())
	}
}

func TestVictimString(t *testing.T) {
	cases := map[VictimPolicy]string{
		Greedy:          "greedy",
		CostBenefit:     "cost-benefit",
		DChoices:        "d-choices",
		WindowedGreedy:  "windowed-greedy",
		RandomGreedy:    "random-greedy",
		VictimPolicy(9): "victim(9)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestWindowedGreedyWindowConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Victim = WindowedGreedy
	cfg.GreedyWindow = 4
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(3)
	for i := int64(0); i < cfg.UserBlocks; i++ {
		s.WriteBlock(i, 0)
	}
	for i := 0; i < int(cfg.UserBlocks)*4; i++ {
		s.WriteBlock(rng.Int63n(cfg.UserBlocks), 0)
	}
	if s.Metrics().SegmentsReclaimed == 0 {
		t.Fatal("windowed greedy with tiny window never reclaimed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkSinkReceivesEveryFlush verifies the sink callback fires
// exactly once per chunk flush with consistent geometry.
func TestChunkSinkReceivesEveryFlush(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	cfg := s.Config() // effective (defaulted) geometry
	var flushes int64
	var payload, pad int64
	s.Reconfigure(func(r *Runtime) {
		r.Sink = func(w ChunkWrite) {
			flushes++
			payload += w.PayloadBytes
			pad += w.PadBytes
			if w.PayloadBytes+w.PadBytes != cfg.ChunkBytes() {
				t.Fatalf("sink chunk of %d+%d bytes", w.PayloadBytes, w.PadBytes)
			}
			if w.Chunk < 0 || w.Chunk >= cfg.SegmentChunks {
				t.Fatalf("sink chunk index %d out of range", w.Chunk)
			}
			if w.Segment < 0 || w.Segment >= s.TotalSegments() {
				t.Fatalf("sink segment %d out of range", w.Segment)
			}
		}
	})
	rng := sim.NewRNG(5)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		now += sim.Time(rng.Int63n(200)) * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain(now + sim.Second)
	m := s.Metrics()
	var wantFlushes int64
	for _, g := range m.PerGroup {
		wantFlushes += g.ChunkFlushes
	}
	if flushes != wantFlushes {
		t.Fatalf("sink saw %d flushes, metrics say %d", flushes, wantFlushes)
	}
	if payload+pad != flushes*cfg.ChunkBytes() {
		t.Fatal("sink byte accounting inconsistent")
	}
}
