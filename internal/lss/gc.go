package lss

import (
	"fmt"
	"math"
	"sort"

	"adapt/internal/telemetry"
)

// The GC cycle is a resumable state machine. A cycle reclaims sealed
// segments until the free pool reaches the high watermark; victims are
// chosen by the configured policy and each victim's valid blocks are
// re-placed through Policy.PlaceGC before the segment returns to the
// free pool. The synchronous path (runGC) drives the machine to
// completion in one call — byte-identical behavior to the historical
// inline cycle. Under Config.BackgroundGC an external pacer drives it
// in bounded slices through GCStep, yielding at chunk-relocation and
// victim boundaries so user operations interleave with GC instead of
// stalling behind a whole cycle.
//
// Interleaving safety rests on three facts. User writes and trims
// during a pause only *invalidate* victim slots (the mapping moves
// away and valid decrements; the relocation scan skips unmapped
// slots), so the valid==0 post-migration invariant still holds.
// Segments only leave the sealed state through this cycle (inGC bars
// reentry), so a selected victim batch stays reclaimable across
// pauses. And the degraded flag and watermark target are re-read at
// every batch boundary, so a Reconfigure landing mid-cycle takes
// effect at the next batch instead of racing a latched target.

// gcCycle is the persistent state of one (possibly preempted) cycle.
type gcCycle struct {
	target  int // free-pool goal, re-latched per victim batch
	budget  int // remaining reclaims before the safety valve trips
	victims []*segment
	vi      int // next victim in the batch
	slot    int // next slot of the current victim
	// migrated counts blocks relocated out of the current victim, for
	// the segment-observer callback.
	migrated int
	// batchBefore is the free-pool size when the current batch was
	// selected, for the no-net-progress exit.
	batchBefore int

	// Cycle-delta telemetry, latched at cycle start.
	startReclaimed, startMigrated, startScanned int64
	id                                          int64
	release                                     func()
}

// runGC synchronously drives the cycle — resuming the in-flight one if
// preempted, else starting fresh — to completion. This is the
// watermark trigger path (and the background mode's emergency floor).
func (s *Store) runGC() {
	for !s.gcAdvance(math.MaxInt) {
	}
}

// runGCUntil synchronously advances the cycle — in chunk-sized steps,
// starting one if needed — until the free pool holds at least want
// segments or the cycle completes on its own. A cycle preempted with
// its target unmet stays in flight for the pacer to resume: this is
// the emergency floor's minimal-stall path.
func (s *Store) runGCUntil(want int) {
	for len(s.free) < want {
		if s.gcAdvance(s.chunkBlocks) {
			return
		}
	}
}

// gcDue reports that the free pool has sunk far enough to owe GC
// work. A synchronous store triggers at the low watermark and sweeps
// back to the high one. A background store is due as soon as the pool
// dips below the high watermark — urgency just above zero — so the
// pacer can trickle small early slices instead of idling until the
// pool hits the urgent zone and then racing the writers to the
// emergency floor.
func (s *Store) gcDue() bool {
	if s.cfg.BackgroundGC {
		// The early start also needs a reclaimable victim to exist (some
		// sealed segment with garbage), or an eager pacer would spin
		// opening cycles that select nothing.
		return len(s.free) < s.cfg.GCHighWater && s.vidx.topGarbage() >= 1
	}
	return len(s.free) <= s.cfg.GCLowWater
}

// GCNeeded reports whether GC has work: a cycle is in flight or the
// free pool is at or below the scheduling trigger (see gcDue). The
// background pacer polls it.
func (s *Store) GCNeeded() bool {
	return s.gc != nil || s.gcDue()
}

// GCActive reports an in-flight (possibly preempted) cycle.
func (s *Store) GCActive() bool { return s.gc != nil }

// GCUrgency is the pacer's distance-to-watermark signal: 0 at or
// above the high watermark, 1 at the low watermark, above 1 as the
// pool sinks toward the emergency floor.
func (s *Store) GCUrgency() float64 {
	span := s.cfg.GCHighWater - s.cfg.GCLowWater
	if span <= 0 {
		span = 1
	}
	u := float64(s.cfg.GCHighWater-len(s.free)) / float64(span)
	if u < 0 {
		return 0
	}
	return u
}

// GCStep drives the background cycle by roughly budget relocation
// units (a unit is one victim chunk scanned, costing at least 1 and at
// most the blocks actually relocated), starting a cycle if one is due.
// It returns true when no cycle remains in flight. Callers must
// serialize with all other store use, exactly as for Write.
func (s *Store) GCStep(budget int) (done bool) {
	if s.gc == nil && !s.gcDue() {
		return true
	}
	if budget <= 0 {
		return s.gc == nil
	}
	s.metrics.GCSlices++
	return s.gcAdvance(budget)
}

// gcTarget resolves the current free-pool goal; degraded mode (failed
// array column, rebuild behind its watermark) reclaims only the
// minimum needed to keep allocating so GC migration traffic does not
// starve the rebuild.
func (s *Store) gcTarget() int {
	if s.degraded {
		return s.cfg.GCLowWater + 1
	}
	return s.cfg.GCHighWater
}

// gcBegin opens a cycle: admission gate, cycle counters, trace event.
func (s *Store) gcBegin() {
	c := &gcCycle{
		// Safety valve against livelock when every victim is nearly
		// full (possible under random/windowed selection): after this
		// many reclaims the cycle gives up and the caller may panic on
		// true exhaustion.
		budget:         8 * len(s.segments),
		startReclaimed: s.metrics.SegmentsReclaimed,
		startMigrated:  s.metrics.GCBlocks,
		startScanned:   s.metrics.GCScannedBlocks,
	}
	if s.gcGate != nil && !s.cfg.BackgroundGC {
		// Cross-shard desynchronization: wait for the shared scheduler
		// token so at most one shard's GC competes for the device
		// columns at a time. The shard lock stays held while waiting —
		// this shard cannot allocate anyway — but other shards keep
		// serving; their mutexes are disjoint.
		c.release = s.gcGate()
	}
	s.metrics.GCCycles++
	c.id = s.metrics.GCCycles
	if s.degraded {
		s.metrics.ThrottledGCCycles++
	}
	if s.tracer != nil {
		s.tracer.Emit(telemetry.GCStart(s.teleNow(), len(s.free)))
	}
	s.gc = c
}

// gcFinish closes the cycle: trace deltas, gate release, fail-stop
// self-check.
func (s *Store) gcFinish() {
	c := s.gc
	s.gc = nil
	if s.tracer != nil {
		s.tracer.Emit(telemetry.GCEnd(s.teleNow(),
			s.metrics.SegmentsReclaimed-c.startReclaimed,
			s.metrics.GCBlocks-c.startMigrated,
			s.metrics.GCScannedBlocks-c.startScanned))
	}
	if c.release != nil {
		c.release()
	}
	if s.cfg.Paranoid {
		s.paranoidCheck("after GC cycle")
	}
}

// gcAdvance executes the state machine until the cycle completes
// (returns true) or roughly budget work units are spent (returns
// false, cycle preempted). Each contiguous execution logs its own
// interference interval, so tail-latency attribution sees the real
// busy windows of a paced cycle rather than one wall-spanning blur.
func (s *Store) gcAdvance(budget int) (done bool) {
	s.inGC = true
	if s.gc == nil {
		s.gcBegin()
	}
	c := s.gc
	if s.itv != nil {
		sliceT0 := s.teleNow()
		defer func() {
			s.itv.Add(telemetry.Interval{
				Kind: telemetry.IntervalGC, ID: c.id, Column: -1, Shard: s.shard,
				Start: sliceT0, End: s.teleNow(),
			})
		}()
	}
	defer func() { s.inGC = false }()
	spent := 0
	for {
		if c.vi >= len(c.victims) {
			// Victim-batch boundary: re-latch the target (the degraded
			// flag may have flipped via Reconfigure during a pause) and
			// run the end-of-batch exits.
			if c.victims != nil {
				if c.budget <= 0 {
					s.gcFinish()
					return true
				}
				if len(s.free) <= c.batchBefore && len(s.free) > s.cfg.GCLowWater {
					// No net progress this batch (valid blocks merely
					// moved) but the cushion is still healthy: stop
					// churning; GC re-triggers at the next low-water
					// allocation. Below the cushion we keep compacting —
					// fractional garbage consolidates across batches and
					// eventually frees whole segments.
					s.gcFinish()
					return true
				}
			}
			c.target = s.gcTarget()
			if len(s.free) >= c.target {
				s.gcFinish()
				return true
			}
			c.batchBefore = len(s.free)
			want := c.target - len(s.free)
			if s.degraded {
				want = 1
			}
			c.victims = s.selectVictims(want)
			c.vi, c.slot, c.migrated = 0, 0, 0
			if len(c.victims) == 0 {
				// Nothing reclaimable; the caller may panic on true
				// exhaustion.
				s.gcFinish()
				return true
			}
		}
		v := c.victims[c.vi]
		if c.slot == 0 && v.state != segSealed {
			c.vi++ // already reclaimed (duplicate in a sampled batch)
			continue
		}
		spent += s.reclaimChunk(v, c)
		if c.slot < v.written {
			// Mid-victim yield point (chunk boundary).
			if spent >= budget {
				return false
			}
			continue
		}
		s.reclaimFinish(v, c)
		c.vi++
		c.slot, c.migrated = 0, 0
		c.budget--
		if len(s.free) >= c.target {
			s.gcFinish()
			return true
		}
		if spent >= budget {
			return false
		}
	}
}

// victimBetter is the canonical victim order used by both selection
// paths: higher score first, then oldest seal clock, then lowest id.
// The deterministic tie-break makes the scan and the index produce
// byte-identical victim sequences for the deterministic policies.
func victimBetter(sa float64, a *segment, sb float64, b *segment) bool {
	if sa != sb {
		return sa > sb
	}
	if a.sealedW != b.sealedW {
		return a.sealedW < b.sealedW
	}
	return a.id < b.id
}

// scoredSeg pairs a candidate with its policy score during selection.
type scoredSeg struct {
	seg   *segment
	score float64
}

// topNCands orders candidates by victimBetter and returns the best n
// segments.
func topNCands(cands []scoredSeg, n int) []*segment {
	sort.Slice(cands, func(i, j int) bool {
		return victimBetter(cands[i].score, cands[i].seg, cands[j].score, cands[j].seg)
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]*segment, n)
	for i := range out {
		out[i] = cands[i].seg
	}
	return out
}

// selectVictims returns up to n victims ordered best-first according
// to the victim policy. Segments with no garbage are never selected
// (reclaiming them cannot make progress). The default path answers
// from the incremental victim index without touching the segment
// array; Config.LegacyVictimScan selects the reference scan.
func (s *Store) selectVictims(n int) []*segment {
	if s.cfg.LegacyVictimScan {
		return s.selectVictimsScan(n)
	}
	return s.selectVictimsIndexed(n)
}

// selectVictimsScan is the reference selector: rescan every segment,
// score, and sort — O(S log S) per call. Kept for differential tests
// and the victim-selection benchmark.
func (s *Store) selectVictimsScan(n int) []*segment {
	var cands []scoredSeg
	consider := func(seg *segment) {
		if seg.state != segSealed || seg.valid >= seg.written {
			return
		}
		cands = append(cands, scoredSeg{seg, s.victimScore(seg)})
	}
	switch s.cfg.Victim {
	case DChoices:
		// Sample d random sealed segments per needed victim.
		tries := s.cfg.DChoicesD * n * 2
		for i := 0; i < tries && len(cands) < s.cfg.DChoicesD*n; i++ {
			seg := s.segments[s.rng.Intn(len(s.segments))]
			consider(seg)
		}
		if len(cands) == 0 {
			// Degenerate sample; fall back to a full scan.
			for _, seg := range s.segments {
				consider(seg)
			}
		}
	case RandomGreedy:
		// Random Greedy [Li et al., SIGMETRICS'13]: pick uniformly at
		// random among reclaimable sealed segments.
		for i := 0; i < 4*len(s.segments) && len(cands) < n; i++ {
			seg := s.segments[s.rng.Intn(len(s.segments))]
			consider(seg)
		}
		if len(cands) == 0 {
			for _, seg := range s.segments {
				consider(seg)
			}
		}
	case WindowedGreedy:
		// Windowed Greedy [Hu et al., SYSTOR'09]: greedy restricted to
		// the W oldest sealed segments (by seal order).
		w := s.windowSize(n)
		var sealed []*segment
		for _, seg := range s.segments {
			if seg.state == segSealed {
				sealed = append(sealed, seg)
			}
		}
		// Seal sequence, not seal clock: sealedW can tie (several seals
		// during one GC cycle), and the window must be a total order for
		// the scan and the seal ring to agree.
		sort.Slice(sealed, func(i, j int) bool { return sealed[i].sealSeq < sealed[j].sealSeq })
		if w > len(sealed) {
			w = len(sealed)
		}
		for _, seg := range sealed[:w] {
			consider(seg)
		}
		if len(cands) == 0 {
			// The oldest window can be entirely full-valid (compacted
			// cold segments); widen to a full scan rather than stall.
			for _, seg := range s.segments {
				consider(seg)
			}
		}
	default:
		for _, seg := range s.segments {
			consider(seg)
		}
	}
	s.metrics.GCScannedBlocks += int64(len(cands))
	return topNCands(cands, n)
}

// windowSize resolves the WindowedGreedy candidate window.
func (s *Store) windowSize(n int) int {
	w := s.cfg.GreedyWindow
	if w <= 0 {
		w = len(s.segments) / 8
	}
	if w < n {
		w = n
	}
	return w
}

// selectVictimsIndexed answers the victim query from the incremental
// index. GCScannedBlocks counts index probes (entries examined) here,
// the indexed analogue of the scan path's candidates-considered count.
func (s *Store) selectVictimsIndexed(n int) []*segment {
	p0 := s.vidx.probes
	defer func() { s.metrics.GCScannedBlocks += s.vidx.probes - p0 }()
	switch s.cfg.Victim {
	case CostBenefit:
		return s.indexedCostBenefit(n)
	case DChoices:
		return s.indexedDChoices(n)
	case RandomGreedy:
		return s.indexedRandomGreedy(n)
	case WindowedGreedy:
		return s.indexedWindowed(n)
	default:
		return s.indexedGreedy(n)
	}
}

// indexedGreedy pops the n best segments from the garbage buckets,
// highest bucket first. Within a bucket the heap order (sealedW, id)
// is exactly the victimBetter tie-break, so the pop sequence matches
// the sorted scan. Popped entries are re-pushed afterwards — victims
// that actually get reclaimed go stale via onFree and are dropped
// lazily.
func (s *Store) indexedGreedy(n int) []*segment {
	vi := s.vidx
	out := make([]*segment, 0, n)
	var popped []viEntry
	for g := vi.topGarbage(); g >= 1 && len(out) < n; {
		e, ok := vi.popLive(g)
		if !ok {
			g--
			continue
		}
		popped = append(popped, e)
		out = append(out, s.segments[e.seg])
	}
	for _, e := range popped {
		vi.heapPush(vi.bucket[e.seg], e)
	}
	return out
}

// indexedCostBenefit merges the per-bucket heads by exact
// cost-benefit score. Utilization is constant within a bucket, so the
// cost-benefit order there is the static (sealedW, id) heap order and
// the global best is always some bucket's head: an n-way merge over at
// most segBlocks buckets, independent of the segment count.
func (s *Store) indexedCostBenefit(n int) []*segment {
	vi := s.vidx
	out := make([]*segment, 0, n)
	var popped []viEntry
	for len(out) < n {
		var best *segment
		var bestScore float64
		bestG := -1
		for g := vi.topGarbage(); g >= 1; g-- {
			e, ok := vi.peekLive(g)
			if !ok {
				continue
			}
			seg := s.segments[e.seg]
			sc := s.victimScore(seg)
			if bestG < 0 || victimBetter(sc, seg, bestScore, best) {
				best, bestScore, bestG = seg, sc, g
			}
		}
		if bestG < 0 {
			break
		}
		e, _ := vi.popLive(bestG)
		popped = append(popped, e)
		out = append(out, best)
	}
	for _, e := range popped {
		vi.heapPush(vi.bucket[e.seg], e)
	}
	return out
}

// indexedDChoices mirrors the scan's sampling loop (same rng stream,
// so victim sequences stay byte-identical), but falls back to the
// index instead of a full scan on a degenerate sample.
func (s *Store) indexedDChoices(n int) []*segment {
	var cands []scoredSeg
	tries := s.cfg.DChoicesD * n * 2
	for i := 0; i < tries && len(cands) < s.cfg.DChoicesD*n; i++ {
		s.vidx.probes++
		seg := s.segments[s.rng.Intn(len(s.segments))]
		if seg.state != segSealed || seg.valid >= seg.written {
			continue
		}
		cands = append(cands, scoredSeg{seg, s.victimScore(seg)})
	}
	if len(cands) == 0 {
		return s.indexedGreedy(n)
	}
	return topNCands(cands, n)
}

// indexedRandomGreedy keeps the scan's rejection-sampling loop; when
// the sample comes up empty it draws uniformly from the index's live
// members instead of scanning, so the distribution is unchanged.
func (s *Store) indexedRandomGreedy(n int) []*segment {
	vi := s.vidx
	var cands []scoredSeg
	for i := 0; i < 4*len(s.segments) && len(cands) < n; i++ {
		vi.probes++
		seg := s.segments[s.rng.Intn(len(s.segments))]
		if seg.state != segSealed || seg.valid >= seg.written {
			continue
		}
		cands = append(cands, scoredSeg{seg, s.victimScore(seg)})
	}
	if len(cands) > 0 {
		return topNCands(cands, n)
	}
	// Uniform permutation of the reclaimable members (partial
	// Fisher-Yates), equivalent to the scan fallback's random scoring.
	var ids []int32
	for g := vi.topGarbage(); g >= 1; g-- {
		for _, e := range vi.buckets[g] {
			vi.probes++
			if vi.liveEntry(e) {
				ids = append(ids, e.seg)
			}
		}
	}
	if n > len(ids) {
		n = len(ids)
	}
	out := make([]*segment, n)
	for i := 0; i < n; i++ {
		j := i + s.rng.Intn(len(ids)-i)
		ids[i], ids[j] = ids[j], ids[i]
		out[i] = s.segments[ids[i]]
	}
	return out
}

// indexedWindowed reads the candidate window straight off the seal
// ring — insertion order is seal order, so no per-cycle sort — and
// falls back to plain greedy when the window holds no garbage.
func (s *Store) indexedWindowed(n int) []*segment {
	vi := s.vidx
	var cands []scoredSeg
	for _, id := range vi.windowEntries(s.windowSize(n)) {
		seg := s.segments[id]
		if seg.valid >= seg.written {
			continue
		}
		cands = append(cands, scoredSeg{seg, s.victimScore(seg)})
	}
	if len(cands) == 0 {
		return s.indexedGreedy(n)
	}
	return topNCands(cands, n)
}

// victimScore returns a higher-is-better score for victim selection.
func (s *Store) victimScore(seg *segment) float64 {
	u := float64(seg.valid) / float64(s.segBlocks)
	switch s.cfg.Victim {
	case RandomGreedy:
		// Pure random choice among reclaimable segments: a random
		// score makes the candidate ordering uniform.
		return s.rng.Float64()
	case CostBenefit:
		// Rosenblum & Ousterhout cost-benefit: age × (1−u) / 2u.
		age := float64(s.w - seg.sealedW)
		if u == 0 {
			return math.Inf(1)
		}
		return age * (1 - u) / (2 * u)
	default: // Greedy and DChoices maximize garbage.
		return 1 - u
	}
}

// reclaimChunk migrates the valid blocks in one chunk's worth of a
// victim's slots, starting at c.slot, and advances the cursor. It is
// the state machine's unit of relocation work; the returned cost is
// at least 1 (so all-garbage chunks still consume budget and the pacer
// makes progress) and otherwise the number of blocks relocated.
func (s *Store) reclaimChunk(seg *segment, c *gcCycle) int {
	if c.slot == 0 {
		if seg.state != segSealed {
			panic(fmt.Sprintf("lss: reclaiming segment %d in state %d", seg.id, seg.state))
		}
		if s.onReclaim != nil {
			s.onReclaim(seg.id)
		}
	}
	base := int64(seg.id) * int64(s.segBlocks)
	end := c.slot + s.chunkBlocks
	if end > seg.written {
		end = seg.written
	}
	relocated := 0
	for ; c.slot < end; c.slot++ {
		// Shadow slots are decoded too: after crash recovery the
		// mapping may legitimately point at a shadow copy, which must
		// be migrated like any live block.
		lba, ok := decodeSlot(seg.lbas[c.slot])
		if !ok {
			continue // padding
		}
		if s.mapping[lba] != base+int64(c.slot) {
			continue // overwritten since (or an expired shadow copy): garbage
		}
		target := s.policy.PlaceGC(lba, seg.group, seg.born, seg.sealedW, s.w)
		if int(target) < 0 || int(target) >= len(s.groups) {
			panic(fmt.Sprintf("lss: policy %s migrated block to unknown group %d", s.policy.Name(), target))
		}
		s.metrics.GCBlocks++
		s.appendBlock(target, lba, kindGC)
		relocated++
	}
	c.migrated += relocated
	if relocated < 1 {
		return 1
	}
	return relocated
}

// reclaimFinish frees a fully migrated victim.
func (s *Store) reclaimFinish(seg *segment, c *gcCycle) {
	if seg.valid != 0 {
		panic(fmt.Sprintf("lss: segment %d has %d valid blocks after migration", seg.id, seg.valid))
	}
	if s.segObs != nil {
		s.segObs.OnSegmentReclaimed(seg.group, seg.born, seg.sealedW, s.w, c.migrated, seg.written)
	}
	s.vidx.onFree(seg)
	seg.state = segFree
	s.free = append(s.free, seg.id)
	s.metrics.SegmentsReclaimed++
	s.durableFree(seg)
}

// paranoidCheck runs CheckInvariants and panics on a violation; it is
// the fail-stop behind Config.Paranoid.
func (s *Store) paranoidCheck(when string) {
	if err := s.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("lss: paranoid check %s: %v", when, err))
	}
}

// CheckInvariants verifies internal consistency; tests call it after
// stress runs. It is O(capacity).
func (s *Store) CheckInvariants() error {
	// Every mapped LBA must point at a matching slot in a non-free
	// segment, and per-segment valid counts must agree with a recount.
	recount := make([]int, len(s.segments))
	var mapped int64
	for lba, loc := range s.mapping {
		if loc < 0 {
			continue
		}
		mapped++
		segID := int(loc / int64(s.segBlocks))
		slot := int(loc % int64(s.segBlocks))
		if segID < 0 || segID >= len(s.segments) {
			return fmt.Errorf("lba %d maps to bad segment %d", lba, segID)
		}
		seg := s.segments[segID]
		if seg.state == segFree {
			return fmt.Errorf("lba %d maps into free segment %d", lba, segID)
		}
		if slot >= seg.written {
			return fmt.Errorf("lba %d maps to unwritten slot %d of segment %d", lba, slot, segID)
		}
		if got, ok := decodeSlot(seg.lbas[slot]); !ok || got != int64(lba) {
			return fmt.Errorf("lba %d maps to slot holding %d", lba, seg.lbas[slot])
		}
		recount[segID]++
	}
	var totalValid int64
	for i, seg := range s.segments {
		if seg.state == segFree {
			continue
		}
		if seg.valid != recount[i] {
			return fmt.Errorf("segment %d valid=%d, recount=%d", i, seg.valid, recount[i])
		}
		totalValid += int64(seg.valid)
		if seg.written > s.segBlocks {
			return fmt.Errorf("segment %d overfilled: %d slots", i, seg.written)
		}
		if seg.state == segSealed && seg.written != s.segBlocks {
			return fmt.Errorf("segment %d sealed at %d/%d slots", i, seg.written, s.segBlocks)
		}
	}
	if totalValid != mapped {
		return fmt.Errorf("valid-block total %d != mapped LBAs %d", totalValid, mapped)
	}
	// Free pool entries must be unique and marked free.
	seen := make(map[int]bool, len(s.free))
	for _, id := range s.free {
		if seen[id] {
			return fmt.Errorf("segment %d appears twice in free pool", id)
		}
		seen[id] = true
		if s.segments[id].state != segFree {
			return fmt.Errorf("segment %d in free pool but state %d", id, s.segments[id].state)
		}
	}
	// Group metric sums must match global counters.
	var u, g, sh, pad int64
	for _, gm := range s.metrics.PerGroup {
		u += gm.UserBlocks
		g += gm.GCBlocks
		sh += gm.ShadowBlocks
		pad += gm.PaddingBlocks
	}
	if u != s.metrics.UserBlocks || g != s.metrics.GCBlocks ||
		sh != s.metrics.ShadowBlocks || pad != s.metrics.PaddingBlocks {
		return fmt.Errorf("per-group sums (%d,%d,%d,%d) disagree with totals (%d,%d,%d,%d)",
			u, g, sh, pad,
			s.metrics.UserBlocks, s.metrics.GCBlocks, s.metrics.ShadowBlocks, s.metrics.PaddingBlocks)
	}
	// The victim index must agree with a recount of segment state.
	if err := s.vidx.check(s.segments); err != nil {
		return err
	}
	return nil
}
