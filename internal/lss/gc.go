package lss

import (
	"fmt"
	"math"
	"sort"

	"adapt/internal/telemetry"
)

// runGC reclaims sealed segments until the free pool reaches the high
// watermark. Victims are chosen by the configured policy; each
// victim's valid blocks are re-placed through Policy.PlaceGC before
// the segment returns to the free pool.
func (s *Store) runGC() {
	s.inGC = true
	defer func() { s.inGC = false }()
	s.metrics.GCCycles++
	if s.tracer != nil {
		s.tracer.Emit(telemetry.GCStart(s.now, len(s.free)))
		startReclaimed := s.metrics.SegmentsReclaimed
		startMigrated := s.metrics.GCBlocks
		startScanned := s.metrics.GCScannedBlocks
		defer func() {
			s.tracer.Emit(telemetry.GCEnd(s.now,
				s.metrics.SegmentsReclaimed-startReclaimed,
				s.metrics.GCBlocks-startMigrated,
				s.metrics.GCScannedBlocks-startScanned))
		}()
	}
	// Safety valve against livelock when every victim is nearly full
	// (possible under random/windowed selection): after this many
	// reclaims the cycle gives up and the caller may panic on true
	// exhaustion.
	budget := 8 * len(s.segments)
	for len(s.free) < s.cfg.GCHighWater {
		before := len(s.free)
		want := s.cfg.GCHighWater - len(s.free)
		victims := s.selectVictims(want)
		if len(victims) == 0 {
			return // nothing reclaimable; caller may panic on exhaustion
		}
		for _, v := range victims {
			if v.state != segSealed {
				continue // already reclaimed (duplicate in a sampled batch)
			}
			s.reclaim(v)
			budget--
			if len(s.free) >= s.cfg.GCHighWater {
				return
			}
		}
		if budget <= 0 {
			return
		}
		if len(s.free) <= before && len(s.free) > s.cfg.GCLowWater {
			// No net progress this batch (valid blocks merely moved)
			// but the cushion is still healthy: stop churning; GC
			// re-triggers at the next low-water allocation. Below the
			// cushion we keep compacting — fractional garbage
			// consolidates across batches and eventually frees whole
			// segments.
			return
		}
	}
}

// selectVictims scans sealed segments once and returns up to n victims
// ordered best-first according to the victim policy. Segments with no
// garbage are never selected (reclaiming them cannot make progress).
func (s *Store) selectVictims(n int) []*segment {
	type scored struct {
		seg   *segment
		score float64
	}
	var cands []scored
	consider := func(seg *segment) {
		if seg.state != segSealed || seg.valid >= seg.written {
			return
		}
		cands = append(cands, scored{seg, s.victimScore(seg)})
	}
	switch s.cfg.Victim {
	case DChoices:
		// Sample d random sealed segments per needed victim.
		tries := s.cfg.DChoicesD * n * 2
		for i := 0; i < tries && len(cands) < s.cfg.DChoicesD*n; i++ {
			seg := s.segments[s.rng.Intn(len(s.segments))]
			consider(seg)
		}
		if len(cands) == 0 {
			// Degenerate sample; fall back to a full scan.
			for _, seg := range s.segments {
				consider(seg)
			}
		}
	case RandomGreedy:
		// Random Greedy [Li et al., SIGMETRICS'13]: pick uniformly at
		// random among reclaimable sealed segments.
		for i := 0; i < 4*len(s.segments) && len(cands) < n; i++ {
			seg := s.segments[s.rng.Intn(len(s.segments))]
			consider(seg)
		}
		if len(cands) == 0 {
			for _, seg := range s.segments {
				consider(seg)
			}
		}
	case WindowedGreedy:
		// Windowed Greedy [Hu et al., SYSTOR'09]: greedy restricted to
		// the W oldest sealed segments (by seal clock).
		w := s.cfg.GreedyWindow
		if w <= 0 {
			w = len(s.segments) / 8
		}
		if w < n {
			w = n
		}
		var sealed []*segment
		for _, seg := range s.segments {
			if seg.state == segSealed {
				sealed = append(sealed, seg)
			}
		}
		sort.Slice(sealed, func(i, j int) bool { return sealed[i].sealedW < sealed[j].sealedW })
		if w > len(sealed) {
			w = len(sealed)
		}
		for _, seg := range sealed[:w] {
			consider(seg)
		}
		if len(cands) == 0 {
			// The oldest window can be entirely full-valid (compacted
			// cold segments); widen to a full scan rather than stall.
			for _, seg := range s.segments {
				consider(seg)
			}
		}
	default:
		for _, seg := range s.segments {
			consider(seg)
		}
	}
	s.metrics.GCScannedBlocks += int64(len(cands))
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]*segment, n)
	for i := range out {
		out[i] = cands[i].seg
	}
	return out
}

// victimScore returns a higher-is-better score for victim selection.
func (s *Store) victimScore(seg *segment) float64 {
	u := float64(seg.valid) / float64(s.segBlocks)
	switch s.cfg.Victim {
	case RandomGreedy:
		// Pure random choice among reclaimable segments: a random
		// score makes the candidate ordering uniform.
		return s.rng.Float64()
	case CostBenefit:
		// Rosenblum & Ousterhout cost-benefit: age × (1−u) / 2u.
		age := float64(s.w - seg.sealedW)
		if u == 0 {
			return math.Inf(1)
		}
		return age * (1 - u) / (2 * u)
	default: // Greedy and DChoices maximize garbage.
		return 1 - u
	}
}

// reclaim migrates a victim's valid blocks and frees the segment.
func (s *Store) reclaim(seg *segment) {
	if seg.state != segSealed {
		panic(fmt.Sprintf("lss: reclaiming segment %d in state %d", seg.id, seg.state))
	}
	base := int64(seg.id) * int64(s.segBlocks)
	migrated := 0
	for slot := 0; slot < seg.written; slot++ {
		// Shadow slots are decoded too: after crash recovery the
		// mapping may legitimately point at a shadow copy, which must
		// be migrated like any live block.
		lba, ok := decodeSlot(seg.lbas[slot])
		if !ok {
			continue // padding
		}
		if s.mapping[lba] != base+int64(slot) {
			continue // overwritten since (or an expired shadow copy): garbage
		}
		target := s.policy.PlaceGC(lba, seg.group, seg.born, seg.sealedW, s.w)
		if int(target) < 0 || int(target) >= len(s.groups) {
			panic(fmt.Sprintf("lss: policy %s migrated block to unknown group %d", s.policy.Name(), target))
		}
		s.metrics.GCBlocks++
		s.appendBlock(target, lba, kindGC)
		migrated++
	}
	if seg.valid != 0 {
		panic(fmt.Sprintf("lss: segment %d has %d valid blocks after migration", seg.id, seg.valid))
	}
	if s.segObs != nil {
		s.segObs.OnSegmentReclaimed(seg.group, seg.born, seg.sealedW, s.w, migrated, seg.written)
	}
	seg.state = segFree
	s.free = append(s.free, seg.id)
	s.metrics.SegmentsReclaimed++
}

// CheckInvariants verifies internal consistency; tests call it after
// stress runs. It is O(capacity).
func (s *Store) CheckInvariants() error {
	// Every mapped LBA must point at a matching slot in a non-free
	// segment, and per-segment valid counts must agree with a recount.
	recount := make([]int, len(s.segments))
	var mapped int64
	for lba, loc := range s.mapping {
		if loc < 0 {
			continue
		}
		mapped++
		segID := int(loc / int64(s.segBlocks))
		slot := int(loc % int64(s.segBlocks))
		if segID < 0 || segID >= len(s.segments) {
			return fmt.Errorf("lba %d maps to bad segment %d", lba, segID)
		}
		seg := s.segments[segID]
		if seg.state == segFree {
			return fmt.Errorf("lba %d maps into free segment %d", lba, segID)
		}
		if slot >= seg.written {
			return fmt.Errorf("lba %d maps to unwritten slot %d of segment %d", lba, slot, segID)
		}
		if got, ok := decodeSlot(seg.lbas[slot]); !ok || got != int64(lba) {
			return fmt.Errorf("lba %d maps to slot holding %d", lba, seg.lbas[slot])
		}
		recount[segID]++
	}
	var totalValid int64
	for i, seg := range s.segments {
		if seg.state == segFree {
			continue
		}
		if seg.valid != recount[i] {
			return fmt.Errorf("segment %d valid=%d, recount=%d", i, seg.valid, recount[i])
		}
		totalValid += int64(seg.valid)
		if seg.written > s.segBlocks {
			return fmt.Errorf("segment %d overfilled: %d slots", i, seg.written)
		}
		if seg.state == segSealed && seg.written != s.segBlocks {
			return fmt.Errorf("segment %d sealed at %d/%d slots", i, seg.written, s.segBlocks)
		}
	}
	if totalValid != mapped {
		return fmt.Errorf("valid-block total %d != mapped LBAs %d", totalValid, mapped)
	}
	// Free pool entries must be unique and marked free.
	seen := make(map[int]bool, len(s.free))
	for _, id := range s.free {
		if seen[id] {
			return fmt.Errorf("segment %d appears twice in free pool", id)
		}
		seen[id] = true
		if s.segments[id].state != segFree {
			return fmt.Errorf("segment %d in free pool but state %d", id, s.segments[id].state)
		}
	}
	// Group metric sums must match global counters.
	var u, g, sh, pad int64
	for _, gm := range s.metrics.PerGroup {
		u += gm.UserBlocks
		g += gm.GCBlocks
		sh += gm.ShadowBlocks
		pad += gm.PaddingBlocks
	}
	if u != s.metrics.UserBlocks || g != s.metrics.GCBlocks ||
		sh != s.metrics.ShadowBlocks || pad != s.metrics.PaddingBlocks {
		return fmt.Errorf("per-group sums (%d,%d,%d,%d) disagree with totals (%d,%d,%d,%d)",
			u, g, sh, pad,
			s.metrics.UserBlocks, s.metrics.GCBlocks, s.metrics.ShadowBlocks, s.metrics.PaddingBlocks)
	}
	return nil
}
