package lss

import (
	"errors"
	"fmt"

	"adapt/internal/blockdev"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// Slot encoding in segment.lbas: values >= 0 are primary block
// addresses; padSlot marks zero padding; values <= shadowBase encode
// shadow copies (cross-group aggregation) as shadowBase-lba, so that
// crash recovery can restore data from a shadow copy when the lazy
// primary was never flushed.
const (
	padSlot    int64 = -1
	shadowBase int64 = -3
)

// encodeShadow encodes a shadow copy of lba for a segment slot.
func encodeShadow(lba int64) int64 { return shadowBase - lba }

// decodeSlot returns the block address a slot refers to (primary or
// shadow) and whether the slot carries data at all (padding does not).
func decodeSlot(v int64) (lba int64, ok bool) {
	switch {
	case v >= 0:
		return v, true
	case v <= shadowBase:
		return shadowBase - v, true
	default:
		return 0, false
	}
}

type segState uint8

const (
	segFree segState = iota
	segOpen
	segSealed
)

// segment is a fixed-size append-only region of the store.
type segment struct {
	id      int
	group   GroupID
	state   segState
	lbas    []int64 // slot encoding: see padSlot/shadowBase
	vers    []int64 // per-slot append sequence (recovery ordering)
	written int     // slots consumed
	valid   int     // live (mapped) blocks
	born    sim.WriteClock
	sealedW sim.WriteClock
	sealSeq int64 // monotone seal counter; total order for seal ties
}

// group is a segment group (stream). Each group owns at most one open
// segment whose tail chunk buffers incoming blocks.
type group struct {
	id   GroupID
	open *segment
	// armTime is the arrival time of the oldest user-written block in
	// the open chunk that is not yet durable; -1 when no such block
	// exists. The SLA window is measured from armTime.
	armTime sim.Time
	// persisted counts pending slots from the chunk start that are
	// already durable via shadow append.
	persisted int
	// arrivals holds the arrival time of each user block in the open
	// chunk (per slot; -1 for GC/shadow/padding slots), feeding the
	// persistence-latency accounting.
	arrivals []sim.Time
	// latCounted is how many slots from the chunk start already have
	// their latency recorded (shadow-persisted prefix).
	latCounted int
}

type appendKind uint8

const (
	kindUser appendKind = iota
	kindGC
	kindShadow
)

// Store is the log-structured store. It is not safe for concurrent
// use; the prototype wraps it with its own synchronization.
type Store struct {
	cfg     Config
	policy  Policy
	advisor Advisor
	segObs  SegmentObserver
	array   *blockdev.Array
	rng     *sim.RNG

	segments []*segment
	free     []int // free segment ids (LIFO)
	groups   []*group
	mapping  []int64 // lba -> seg.id*segBlocks + slot, or -1

	w   sim.WriteClock
	now sim.Time
	// inGC guards against reentrant GC while cycle code is on the
	// stack (GC migrations allocate through ensureOpen); gc holds the
	// resumable state of the in-flight cycle, which under
	// Config.BackgroundGC may persist, preempted, across user
	// operations until the pacer's next GCStep.
	inGC      bool
	gc        *gcCycle
	degraded  bool  // throttle GC while the array runs degraded
	appendSeq int64 // monotone per-append version for recovery
	sealCount int64 // monotone seal counter feeding segment.sealSeq

	// vidx tracks sealed segments for O(1)-amortized victim selection;
	// maintained unconditionally, consulted unless LegacyVictimScan.
	vidx *victimIndex
	// onReclaim, when set, observes every reclaimed victim in selection
	// order (differential tests compare victim sequences through it).
	onReclaim func(segID int)

	segBlocks   int
	chunkBlocks int
	blockBytes  int64

	metrics Metrics
	snaps   []GroupSnapshot // scratch for advisor callbacks

	// sink, when set, observes every chunk flush (the prototype routes
	// these to simulated devices). auditSink is a second, independent
	// observer slot reserved for verification (the checker's byte
	// mirror), so the oracle composes with device models.
	sink      ChunkSink
	auditSink ChunkSink

	// Telemetry hooks; all nil (no-op) until a set attaches via Deps
	// or Reconfigure. tset remembers the attached set so Reconfigure
	// can treat re-attachment as a no-op.
	tset    *telemetry.Set
	tracer  *telemetry.Tracer
	rec     *telemetry.Recorder
	padHist *telemetry.Histogram
	// itv receives GC interference intervals for tail-latency
	// attribution; clock, when set, overrides s.now for telemetry
	// timestamps (the prototype injects its wall-derived clock, which
	// keeps advancing during a synchronous GC cycle while s.now is
	// frozen at the triggering op's timestamp).
	itv   *telemetry.IntervalLog
	clock func() sim.Time
	// shard is this store's shard id when it is one partition of a
	// sharded engine, -1 standalone. Telemetry metric names gain a
	// shard label and GC intervals carry it, so per-shard GC activity
	// stays attributable after aggregation.
	shard int32
	// durable, when set, persists segment lifecycle transitions and
	// flushed chunks (internal/segfile); durableErr latches the first
	// backend failure and fails every subsequent mutation, so no
	// acknowledgement can outrun the durable image.
	durable    DurableLog
	durableErr error
	// gcGate, when set, is invoked at the start of every synchronous
	// GC cycle and the returned release when the cycle ends. The
	// sharded engine serializes cross-shard GC through it so no two
	// shards collect — and saturate the shared device columns — at the
	// same time. Ignored under BackgroundGC (the pacer serializes).
	gcGate func() (release func())
	// recoveredSegments/Blocks record what Recover rebuilt, reported
	// through the tracer when telemetry attaches to a recovered store.
	recoveredSegments int
	recoveredBlocks   int64
}

// ChunkWrite describes one completed chunk write: which group emitted
// it, where it lands in the physical segment space, and its payload
// and padding sizes (they sum to the chunk size). Segment/Chunk
// identify the physical location, so a device model underneath can
// observe overwrites when segments are reclaimed and reused.
type ChunkWrite struct {
	Group        GroupID
	Segment      int // physical segment id
	Chunk        int // chunk index within the segment
	PayloadBytes int64
	PadBytes     int64
}

// ChunkSink observes every chunk flush.
type ChunkSink func(ChunkWrite)

// New builds a store with the given configuration and placement
// policy, wired with at most one Deps. If the policy implements
// Advisor or SegmentObserver those hooks are wired automatically.
func New(cfg Config, p Policy, deps ...Deps) *Store {
	if p == nil {
		panic("lss: nil policy")
	}
	ngroups := p.Groups()
	if ngroups < 1 {
		panic("lss: policy declares no groups")
	}
	cfg = cfg.withDefaults(ngroups)
	total := cfg.totalSegments(ngroups)
	segBlocks := cfg.SegmentBlocks()

	s := &Store{
		cfg:         cfg,
		policy:      p,
		array:       blockdev.NewArray(cfg.DataColumns, cfg.ChunkBytes()),
		rng:         sim.NewRNG(0x5eed),
		segments:    make([]*segment, total),
		free:        make([]int, 0, total),
		groups:      make([]*group, ngroups),
		mapping:     make([]int64, cfg.UserBlocks),
		segBlocks:   segBlocks,
		chunkBlocks: cfg.ChunkBlocks,
		blockBytes:  int64(cfg.BlockSize),
		snaps:       make([]GroupSnapshot, ngroups),
		vidx:        newVictimIndex(total, segBlocks),
		shard:       -1,
	}
	for i := range s.mapping {
		s.mapping[i] = -1
	}
	for i := range s.segments {
		s.segments[i] = &segment{
			id:   i,
			lbas: make([]int64, segBlocks),
			vers: make([]int64, segBlocks),
		}
	}
	// LIFO pop from the end; push ids in reverse so low ids go first.
	for i := total - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	for g := range s.groups {
		s.groups[g] = &group{
			id:       GroupID(g),
			armTime:  -1,
			arrivals: make([]sim.Time, cfg.ChunkBlocks),
		}
	}
	s.metrics.PerGroup = make([]GroupMetrics, ngroups)
	if a, ok := p.(Advisor); ok {
		s.advisor = a
	}
	if o, ok := p.(SegmentObserver); ok {
		s.segObs = o
	}
	s.applyDeps(deps)
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// Policy returns the placement policy in use.
func (s *Store) Policy() Policy { return s.policy }

// Array returns the underlying array accounting model.
func (s *Store) Array() *blockdev.Array { return s.array }

// Metrics returns the live metrics. The caller must treat the result
// as read-only.
func (s *Store) Metrics() *Metrics { return &s.metrics }

// WriteClock returns the number of user blocks written so far.
func (s *Store) WriteClock() sim.WriteClock { return s.w }

// Now returns the current simulated time.
func (s *Store) Now() sim.Time { return s.now }

// teleNow returns the telemetry timestamp: the injected clock when
// set, the logical clock otherwise.
func (s *Store) teleNow() sim.Time {
	if s.clock != nil {
		return s.clock()
	}
	return s.now
}

// FreeSegments returns the current free-pool size.
func (s *Store) FreeSegments() int { return len(s.free) }

// Shard returns the store's shard id, -1 when standalone.
func (s *Store) Shard() int { return int(s.shard) }

// Degraded reports whether degraded-mode GC throttling is active.
// Toggle it through Reconfigure.
func (s *Store) Degraded() bool { return s.degraded }

// TotalSegments returns the physical segment count.
func (s *Store) TotalSegments() int { return len(s.segments) }

// LiveBlocks returns the number of currently mapped LBAs.
func (s *Store) LiveBlocks() int64 {
	var n int64
	for _, seg := range s.segments {
		if seg.state != segFree {
			n += int64(seg.valid)
		}
	}
	return n
}

// ErrBadLBA is returned for out-of-range block addresses.
var ErrBadLBA = errors.New("lss: LBA out of range")

// Write appends blocks user-written blocks starting at lba, advancing
// simulated time to now first. Multi-block requests are placed block
// by block, as in the paper's 4 KiB-granularity model.
func (s *Store) Write(lba int64, blocks int, now sim.Time) error {
	for i := 0; i < blocks; i++ {
		if err := s.WriteBlock(lba+int64(i), now); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock appends one user-written block.
func (s *Store) WriteBlock(lba int64, now sim.Time) error {
	if s.durableErr != nil {
		return s.durableErr
	}
	if lba < 0 || lba >= s.cfg.UserBlocks {
		return fmt.Errorf("%w: %d (capacity %d)", ErrBadLBA, lba, s.cfg.UserBlocks)
	}
	s.advance(now)
	g := s.policy.PlaceUser(lba, s.now, s.w)
	if int(g) < 0 || int(g) >= len(s.groups) {
		panic(fmt.Sprintf("lss: policy %s placed user block in unknown group %d", s.policy.Name(), g))
	}
	s.w++
	s.appendBlock(g, lba, kindUser)
	return nil
}

// Read records a user read; reads do not affect placement but are
// tracked for workload statistics.
func (s *Store) Read(lba int64, blocks int, now sim.Time) {
	s.advance(now)
	s.metrics.ReadBlocks += int64(blocks)
}

// Trim discards blocks (TRIM/UNMAP): their current versions become
// garbage immediately, reclaimable by GC without migration. Trimming
// unmapped blocks is a no-op, as on real devices.
func (s *Store) Trim(lba int64, blocks int, now sim.Time) error {
	if s.durableErr != nil {
		return s.durableErr
	}
	if lba < 0 || lba+int64(blocks) > s.cfg.UserBlocks {
		return fmt.Errorf("%w: trim [%d,%d)", ErrBadLBA, lba, lba+int64(blocks))
	}
	s.advance(now)
	for i := int64(0); i < int64(blocks); i++ {
		if loc := s.mapping[lba+i]; loc >= 0 {
			seg := s.segments[loc/int64(s.segBlocks)]
			seg.valid--
			if seg.state == segSealed {
				s.vidx.onInvalidate(seg)
			}
			s.mapping[lba+i] = -1
			s.metrics.TrimmedBlocks++
		}
	}
	return nil
}

// Drain flushes every open chunk that still buffers blocks, padding
// the remainders. Call once at the end of a replay so that final
// traffic accounting is complete.
func (s *Store) Drain(now sim.Time) {
	s.advance(now)
	for _, gr := range s.groups {
		if s.pending(gr) > 0 {
			s.padFlush(gr, nil, s.now, telemetry.FlushDrain)
		}
	}
	s.durableCheckpoint()
	s.rec.Finish(s.now)
	if s.cfg.Paranoid {
		s.paranoidCheck("at Drain")
	}
}

// unpersistedLBAs returns the block addresses held by gr's
// unpersisted pending slots (the slots a shadow append duplicates).
// Padding cannot occur in pending slots; shadow slots are decoded to
// their underlying address.
func (s *Store) unpersistedLBAs(gr *group) []int64 {
	p := s.pending(gr)
	seg := gr.open
	start := seg.written - p + gr.persisted
	out := make([]int64, 0, p-gr.persisted)
	for i := start; i < seg.written; i++ {
		if lba, ok := decodeSlot(seg.lbas[i]); ok {
			out = append(out, lba)
		}
	}
	return out
}

// pending returns the number of blocks buffered in gr's open chunk.
func (s *Store) pending(gr *group) int {
	if gr.open == nil {
		return 0
	}
	return gr.open.written % s.chunkBlocks
}

// unpersisted returns how many pending blocks lack durability.
func (s *Store) unpersisted(gr *group) int {
	p := s.pending(gr)
	u := p - gr.persisted
	if u < 0 {
		u = 0
	}
	return u
}

// advance moves simulated time forward and fires SLA timeouts for any
// open chunk whose oldest unpersisted user block has waited past the
// window. Timeouts are processed lazily (at the next event) but in
// deadline order, so a later-expiring group's handler cannot absorb an
// earlier-expiring group's blocks past their own deadline.
func (s *Store) advance(now sim.Time) {
	if now > s.now {
		s.now = now
	}
	s.rec.TickTo(s.now)
	for {
		var next *group
		for _, gr := range s.groups {
			if gr.armTime < 0 || s.now-gr.armTime < s.cfg.SLAWindow || s.unpersisted(gr) == 0 {
				continue
			}
			if next == nil || gr.armTime < next.armTime {
				next = gr
			}
		}
		if next == nil {
			return
		}
		s.handleTimeout(next)
	}
}

// handleTimeout flushes (or shadow-persists) group gr's expired chunk.
// Timeouts are processed lazily, so the physical flush is stamped at
// the SLA deadline rather than the (later) processing time.
func (s *Store) handleTimeout(gr *group) {
	deadline := gr.armTime + s.cfg.SLAWindow
	act := TimeoutAction{Kind: PadOwn}
	if s.advisor != nil {
		act = s.advisor.OnChunkTimeout(gr.id, s.now, s.snapshot())
	}
	if act.Kind == ShadowInto {
		if s.shadowInto(gr, act.Target, deadline) {
			return
		}
		// Shadow target unusable; fall back to padding.
	}
	s.padFlush(gr, act.Donors, deadline, telemetry.FlushSLA)
}

// snapshot fills and returns per-group state for advisor decisions.
func (s *Store) snapshot() []GroupSnapshot {
	for i, gr := range s.groups {
		gm := s.metrics.PerGroup[i]
		p := s.pending(gr)
		s.snaps[i] = GroupSnapshot{
			Group:           gr.id,
			OpenPending:     p,
			OpenUnpersisted: s.unpersisted(gr),
			OpenFree:        s.chunkBlocks - p,
			UserBlocks:      gm.UserBlocks,
			GCBlocks:        gm.GCBlocks,
			ShadowBlocks:    gm.ShadowBlocks,
			PaddingBlocks:   gm.PaddingBlocks,
			PaddingEvents:   gm.PaddingEvents,
			SealedSegments:  int(gm.Sealed),
		}
	}
	return s.snaps
}

// shadowInto persists gr's unpersisted pending blocks as shadow copies
// in target's open chunk and flushes target's chunk immediately
// (§3.3). Returns false if the target cannot absorb all of them, in
// which case the caller pads instead.
func (s *Store) shadowInto(gr *group, target GroupID, at sim.Time) bool {
	if int(target) < 0 || int(target) >= len(s.groups) || target == gr.id {
		return false
	}
	tg := s.groups[target]
	need := s.unpersisted(gr)
	if need == 0 {
		return false
	}
	if s.chunkBlocks-s.pending(tg) < need {
		return false
	}
	// The target chunk will be flushed as part of this shadow append;
	// its own pending blocks become durable at the deadline, not at
	// the (possibly much later) lazy processing time — record their
	// latency now, before a boundary flush can stamp s.now.
	s.recordLatencies(tg, s.pending(tg), at)
	// Copy the real block addresses of the unpersisted source slots so
	// that recovery can restore data from the shadow copies. The target
	// group must have an open segment with room in its current chunk.
	srcs := s.unpersistedLBAs(gr)
	for _, lba := range srcs {
		s.appendBlock(target, lba, kindShadow)
	}
	s.recordLatencies(gr, s.pending(gr), at)
	gr.persisted = s.pending(gr)
	gr.armTime = -1
	// The shadow copies (and any target-pending blocks) must be durable
	// now: flush the target chunk, padding any remainder.
	if s.pending(tg) > 0 {
		s.padFlush(tg, nil, at, telemetry.FlushShadow)
	}
	return true
}

// padFlush flushes gr's open chunk. Donor groups may contribute their
// unpersisted pending blocks as shadow copies to fill would-be padding
// space (all-or-nothing per donor); the rest is zero padding. why is
// recorded with the telemetry pad-flush event.
func (s *Store) padFlush(gr *group, donors []GroupID, at sim.Time, why telemetry.FlushReason) {
	p := s.pending(gr)
	if p == 0 {
		return
	}
	// Pending blocks persist at this flush; stamp their latency at the
	// flush time before donor fillers can trigger a boundary flush
	// that would use the lazy processing clock.
	s.recordLatencies(gr, p, at)
	for _, d := range donors {
		if s.pending(gr) == 0 {
			return // donors filled the chunk exactly; it auto-flushed
		}
		if int(d) < 0 || int(d) >= len(s.groups) || d == gr.id {
			continue
		}
		dg := s.groups[d]
		n := s.unpersisted(dg)
		if n == 0 || n > s.chunkBlocks-s.pending(gr) {
			continue
		}
		for _, lba := range s.unpersistedLBAs(dg) {
			s.appendBlock(gr.id, lba, kindShadow)
		}
		s.recordLatencies(dg, s.pending(dg), at)
		dg.persisted = s.pending(dg)
		dg.armTime = -1
	}
	p = s.pending(gr)
	if p == 0 {
		return
	}
	seg := gr.open
	pad := s.chunkBlocks - p
	for i := 0; i < pad; i++ {
		gr.arrivals[seg.written%s.chunkBlocks] = -1
		seg.lbas[seg.written] = padSlot
		seg.written++
	}
	gm := &s.metrics.PerGroup[gr.id]
	gm.PaddingBlocks += int64(pad)
	gm.PaddingEvents++
	s.metrics.PaddingBlocks += int64(pad)
	if s.tracer != nil && pad > 0 {
		s.tracer.Emit(telemetry.PadFlush(at, int(gr.id), pad, why))
	}
	s.flushChunk(gr, pad, at)
	if seg.written == s.segBlocks {
		s.seal(gr)
	}
}

// flushChunk accounts one completed chunk (device write) for gr and
// resets the chunk buffering state.
func (s *Store) flushChunk(gr *group, padBlocks int, at sim.Time) {
	s.recordLatencies(gr, s.chunkBlocks, at)
	payload := int64(s.chunkBlocks-padBlocks) * s.blockBytes
	s.array.WriteChunk(payload, int64(padBlocks)*s.blockBytes)
	s.metrics.PerGroup[gr.id].ChunkFlushes++
	s.padHist.Observe(int64(padBlocks))
	if s.tracer != nil {
		s.tracer.Emit(telemetry.ChunkFlush(at, int(gr.id), gr.open.id,
			gr.open.written/s.chunkBlocks-1, s.chunkBlocks-padBlocks, padBlocks))
	}
	if s.sink != nil || s.auditSink != nil {
		w := ChunkWrite{
			Group:        gr.id,
			Segment:      gr.open.id,
			Chunk:        gr.open.written/s.chunkBlocks - 1,
			PayloadBytes: payload,
			PadBytes:     int64(padBlocks) * s.blockBytes,
		}
		if s.sink != nil {
			s.sink(w)
		}
		if s.auditSink != nil {
			s.auditSink(w)
		}
	}
	s.durableAppend(gr)
	gr.armTime = -1
	gr.persisted = 0
	gr.latCounted = 0
}

// recordLatencies records persistence latency for the open chunk's
// user blocks in slots [gr.latCounted, upto), durable at time at.
func (s *Store) recordLatencies(gr *group, upto int, at sim.Time) {
	for i := gr.latCounted; i < upto; i++ {
		if a := gr.arrivals[i]; a >= 0 {
			s.metrics.Latency.record(at-a, s.cfg.SLAWindow)
		}
	}
	if upto > gr.latCounted {
		gr.latCounted = upto
	}
}

// appendBlock appends one block of the given kind to group g,
// allocating/sealing segments and flushing full chunks as needed.
func (s *Store) appendBlock(g GroupID, lba int64, kind appendKind) {
	gr := s.groups[g]
	seg := s.ensureOpen(gr)
	slot := seg.written
	gr.arrivals[slot%s.chunkBlocks] = -1
	gm := &s.metrics.PerGroup[g]
	s.appendSeq++
	seg.vers[slot] = s.appendSeq
	switch kind {
	case kindUser, kindGC:
		if old := s.mapping[lba]; old >= 0 {
			oldSeg := s.segments[old/int64(s.segBlocks)]
			oldSeg.valid--
			if oldSeg.state == segSealed {
				s.vidx.onInvalidate(oldSeg)
			}
		}
		seg.lbas[slot] = lba
		s.mapping[lba] = int64(seg.id)*int64(s.segBlocks) + int64(slot)
		seg.valid++
		if kind == kindUser {
			// Counted here, not in WriteBlock: ensureOpen above may run a
			// whole GC cycle, and its invariant sweep must not see the
			// global counter ahead of the per-group one.
			s.metrics.UserBlocks++
			gm.UserBlocks++
			gr.arrivals[slot%s.chunkBlocks] = s.now
			if gr.armTime < 0 {
				gr.armTime = s.now
			}
		} else {
			gm.GCBlocks++
		}
	case kindShadow:
		seg.lbas[slot] = encodeShadow(lba)
		gm.ShadowBlocks++
		s.metrics.ShadowBlocks++
	}
	seg.written++
	if seg.written%s.chunkBlocks == 0 {
		s.flushChunk(gr, 0, s.now)
	}
	if seg.written == s.segBlocks {
		s.seal(gr)
	}
}

// ensureOpen returns gr's open segment, allocating one if needed.
func (s *Store) ensureOpen(gr *group) *segment {
	if gr.open != nil {
		return gr.open
	}
	if !s.inGC {
		if s.cfg.BackgroundGC {
			// Background mode: watermark-triggered GC is the external
			// pacer's job (GCStep); the store only intervenes when the
			// free pool hits the emergency hard floor. Even then it does
			// the minimum stop-the-world work — advance the in-flight
			// cycle (or a fresh one) synchronously only until the pool
			// clears the low watermark — and leaves the rest of the
			// cycle in flight for the pacer, so an emergency costs a few
			// segments' relocation inline, not a whole cycle's.
			if len(s.free) <= s.cfg.GCEmergencyFloor {
				s.metrics.GCEmergencyRuns++
				s.runGCUntil(s.cfg.GCLowWater)
			}
		} else if len(s.free) <= s.cfg.GCLowWater {
			s.runGC()
		}
		// GC migrations may have placed blocks into this very group,
		// opening a segment for it already.
		if gr.open != nil {
			return gr.open
		}
	}
	if len(s.free) == 0 {
		panic(fmt.Sprintf("lss: free pool exhausted (policy %s): GC cannot reclaim garbage", s.policy.Name()))
	}
	id := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	seg := s.segments[id]
	seg.group = gr.id
	seg.state = segOpen
	seg.written = 0
	seg.valid = 0
	seg.born = s.w
	gr.open = seg
	gr.armTime = -1
	gr.persisted = 0
	gr.latCounted = 0
	s.durableOpen(seg)
	return seg
}

// seal closes gr's open segment. Only full segments seal, so the last
// chunk has already been flushed.
func (s *Store) seal(gr *group) {
	seg := gr.open
	seg.state = segSealed
	seg.sealedW = s.w
	s.sealCount++
	seg.sealSeq = s.sealCount
	s.vidx.onSeal(seg)
	gr.open = nil
	s.metrics.PerGroup[gr.id].Sealed++
	if s.tracer != nil {
		s.tracer.Emit(telemetry.SegmentSeal(s.now, int(gr.id), seg.id, seg.valid))
	}
	s.durableSeal(seg)
}
