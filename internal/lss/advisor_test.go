package lss

import (
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

// scriptedAdvisor lets tests drive the timeout arbitration directly.
type scriptedAdvisor struct {
	twoGroup
	action TimeoutAction
	calls  int
}

func (a *scriptedAdvisor) OnChunkTimeout(GroupID, sim.Time, []GroupSnapshot) TimeoutAction {
	a.calls++
	return a.action
}

// threeGroup places user writes alternately into groups 0 and 1, GC
// into group 2 — lets tests create pending data in two user groups.
type threeGroup struct{ flip bool }

func (*threeGroup) Name() string { return "test-threegroup" }
func (*threeGroup) Groups() int  { return 3 }
func (p *threeGroup) PlaceUser(lba int64, _ sim.Time, _ sim.WriteClock) GroupID {
	if lba%2 == 0 {
		return 0
	}
	return 1
}
func (*threeGroup) PlaceGC(int64, GroupID, sim.WriteClock, sim.WriteClock, sim.WriteClock) GroupID {
	return 2
}

type scriptedAdvisor3 struct {
	threeGroup
	action func(g GroupID) TimeoutAction
}

func (a *scriptedAdvisor3) OnChunkTimeout(g GroupID, _ sim.Time, _ []GroupSnapshot) TimeoutAction {
	return a.action(g)
}

func TestAdvisorPadOwnMatchesDefault(t *testing.T) {
	adv := &scriptedAdvisor{action: TimeoutAction{Kind: PadOwn}}
	s := New(smallConfig(), adv)
	s.WriteBlock(1, 0)
	s.WriteBlock(2, sim.Millisecond) // past SLA: timeout fires
	if adv.calls == 0 {
		t.Fatal("advisor never consulted")
	}
	if got := s.Metrics().PaddingBlocks; got != 3 {
		t.Fatalf("PaddingBlocks = %d, want 3 (one block padded to 4)", got)
	}
}

func TestAdvisorShadowInto(t *testing.T) {
	adv := &scriptedAdvisor3{}
	adv.action = func(g GroupID) TimeoutAction {
		if g == 0 {
			return TimeoutAction{Kind: ShadowInto, Target: 1}
		}
		return TimeoutAction{Kind: PadOwn}
	}
	s := New(smallConfig(), adv)
	// One block in group 0 (lba 0), one in group 1 (lba 1).
	s.WriteBlock(0, 0)
	s.WriteBlock(1, 0)
	// Trigger group 0's timeout; its block shadows into group 1, whose
	// chunk is then flushed with 2 real blocks + 2 padding.
	s.WriteBlock(2, sim.Millisecond)
	m := s.Metrics()
	if m.ShadowBlocks != 1 {
		t.Fatalf("ShadowBlocks = %d, want 1", m.ShadowBlocks)
	}
	if m.PerGroup[1].ShadowBlocks != 1 {
		t.Fatalf("shadow block not in target group: %+v", m.PerGroup)
	}
	// Group 1's chunk flushed with padding 4-(1 own +1 shadow) = 2.
	if m.PerGroup[1].PaddingBlocks != 2 {
		t.Fatalf("target padding = %d, want 2", m.PerGroup[1].PaddingBlocks)
	}
	// Group 0's chunk must still be open (lazy append), no padding.
	if m.PerGroup[0].PaddingBlocks != 0 {
		t.Fatalf("source group padded: %d", m.PerGroup[0].PaddingBlocks)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdvisorShadowedBlocksDoNotRetimeout(t *testing.T) {
	adv := &scriptedAdvisor3{}
	shadows := 0
	adv.action = func(g GroupID) TimeoutAction {
		if g == 0 {
			shadows++
			return TimeoutAction{Kind: ShadowInto, Target: 1}
		}
		return TimeoutAction{Kind: PadOwn}
	}
	s := New(smallConfig(), adv)
	s.WriteBlock(0, 0)
	s.WriteBlock(1, 0)
	s.WriteBlock(2, sim.Millisecond)   // group-0 timeout → shadow (lba 0)
	s.WriteBlock(4, 2*sim.Millisecond) // another group-0 write... triggers re-arm
	s.WriteBlock(6, 3*sim.Millisecond) // timeout again: only lba 2,4 unpersisted
	m := s.Metrics()
	// lba 0 must have been shadowed exactly once.
	if m.ShadowBlocks > 3 {
		t.Fatalf("persisted blocks re-shadowed: %d shadow blocks", m.ShadowBlocks)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdvisorDonorFill(t *testing.T) {
	adv := &scriptedAdvisor3{}
	adv.action = func(g GroupID) TimeoutAction {
		if g == 1 {
			return TimeoutAction{Kind: PadOwn, Donors: []GroupID{0}}
		}
		return TimeoutAction{Kind: ShadowInto, Target: 1}
	}
	s := New(smallConfig(), adv)
	// Group 1 gets one block; group 0 gets one block. Make group 1 time
	// out first by writing its block earlier.
	s.WriteBlock(1, 0)                   // group 1
	s.WriteBlock(0, 50*sim.Microsecond)  // group 0
	s.WriteBlock(3, 150*sim.Microsecond) // group 1 timeout → donor fill from 0
	m := s.Metrics()
	if m.PerGroup[1].ShadowBlocks != 1 {
		t.Fatalf("donor block missing from group 1: %+v", m.PerGroup[1])
	}
	// Chunk: 1 own + 1 donor + 2 pad.
	if m.PerGroup[1].PaddingBlocks != 2 {
		t.Fatalf("padding = %d, want 2", m.PerGroup[1].PaddingBlocks)
	}
	// Donor's own chunk stays open, unpadded.
	if m.PerGroup[0].PaddingBlocks != 0 {
		t.Fatalf("donor group padded: %d", m.PerGroup[0].PaddingBlocks)
	}
}

func TestAdvisorInvalidTargetFallsBack(t *testing.T) {
	adv := &scriptedAdvisor{action: TimeoutAction{Kind: ShadowInto, Target: 99}}
	s := New(smallConfig(), adv)
	s.WriteBlock(1, 0)
	s.WriteBlock(2, sim.Millisecond)
	// Invalid target must degrade to padding, not panic or stall.
	if got := s.Metrics().PaddingBlocks; got == 0 {
		t.Fatal("invalid shadow target did not fall back to padding")
	}
}

func TestTrim(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	s.Write(0, 8, 0)
	if err := s.Trim(2, 4, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveBlocks(); got != 4 {
		t.Fatalf("LiveBlocks after trim = %d, want 4", got)
	}
	if got := s.Metrics().TrimmedBlocks; got != 4 {
		t.Fatalf("TrimmedBlocks = %d, want 4", got)
	}
	// Double trim is a no-op.
	if err := s.Trim(2, 4, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().TrimmedBlocks; got != 4 {
		t.Fatalf("double trim counted: %d", got)
	}
	if err := s.Trim(-1, 2, 0); err == nil {
		t.Fatal("negative trim accepted")
	}
	if err := s.Trim(0, 1<<30, 0); err == nil {
		t.Fatal("oversized trim accepted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomOpsInvariants is a property test: any interleaving of
// writes, trims, reads, and time advances preserves store invariants
// and never loses live data.
func TestRandomOpsInvariants(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		cfg := smallConfig()
		s := New(cfg, twoGroup{})
		rng := sim.NewRNG(seed)
		live := make(map[int64]bool)
		now := sim.Time(0)
		ops := int(opsRaw)%3000 + 500
		for i := 0; i < ops; i++ {
			now += sim.Time(rng.Int63n(250)) * sim.Microsecond
			lba := rng.Int63n(cfg.UserBlocks)
			switch rng.Intn(10) {
			case 0:
				n := int(rng.Int63n(4)) + 1
				if lba+int64(n) > cfg.UserBlocks {
					n = 1
				}
				if err := s.Trim(lba, n, now); err != nil {
					return false
				}
				for j := 0; j < n; j++ {
					delete(live, lba+int64(j))
				}
			case 1:
				s.Read(lba, 1, now)
			default:
				if err := s.WriteBlock(lba, now); err != nil {
					return false
				}
				live[lba] = true
			}
		}
		s.Drain(now + sim.Second)
		if s.LiveBlocks() != int64(len(live)) {
			return false
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
