package cli_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandsRejectBadArgsUniformly builds every cmd/ binary and
// checks the shared contract: unknown flags and invalid configuration
// print usage to stderr and exit 2.
func TestCommandsRejectBadArgsUniformly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all cmd binaries")
	}
	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir, "adapt/cmd/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmds: %v\n%s", err, out)
	}

	cases := []struct {
		bin  string
		args []string
	}{
		// Unknown flag: the flag package path.
		{"adaptsim", []string{"-definitely-not-a-flag"}},
		{"adaptbench", []string{"-definitely-not-a-flag"}},
		{"tracegen", []string{"-definitely-not-a-flag"}},
		{"traceinfo", []string{"-definitely-not-a-flag"}},
		{"adaptserve", []string{"-definitely-not-a-flag"}},
		{"adaptload", []string{"-definitely-not-a-flag"}},
		{"nbdload", []string{"-definitely-not-a-flag"}},
		// Invalid configuration: the post-parse validation path.
		{"adaptsim", []string{"-policy", "bogus"}},
		{"adaptsim", []string{"-victim", "bogus"}},
		{"adaptbench", []string{"-scale", "bogus"}},
		{"adaptbench", []string{"-exp", "bogus"}},
		{"tracegen", []string{"-profile", "bogus"}},
		{"traceinfo", []string{}}, // no trace files
		{"traceinfo", []string{"-format", "bogus", "ignored.bin"}},
		{"adaptserve", []string{"-volumes", "0"}},
		{"adaptserve", []string{"-victim", "bogus"}},
		{"adaptserve", []string{"-nbd-max-req-kib", "-1"}},
		{"adaptserve", []string{"-nbd-max-req-kib", "64"}}, // requires -nbd-addr
		{"adaptload", []string{"-write-frac", "2"}},
		{"adaptload", []string{"-tenants", "0"}},
		{"nbdload", []string{"-write-frac", "2"}},
		{"nbdload", []string{"-unaligned", "2"}},
		{"nbdload", []string{"-workers", "0"}},
	}
	for _, tc := range cases {
		name := tc.bin + " " + strings.Join(tc.args, " ")
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(dir, tc.bin), tc.args...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v (stdout %q)", err, stdout.String())
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("exit code %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "usage:") {
				t.Fatalf("stderr missing usage:\n%s", stderr.String())
			}
			if strings.Contains(stdout.String(), "usage:") {
				t.Fatalf("usage printed to stdout, want stderr:\n%s", stdout.String())
			}
		})
	}
}
