// Package cli standardizes command-line handling across the cmd/
// binaries so they fail the same way: unknown flags, bad flag values,
// and invalid configuration print the error plus usage to stderr and
// exit 2 (the flag package's usage-error convention); runtime failures
// print the error to stderr and exit 1.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Exit and Stderr are swappable for tests.
var (
	Exit             = os.Exit
	Stderr io.Writer = os.Stderr
)

// Command wraps one binary's flag set.
type Command struct {
	name string
	fs   *flag.FlagSet
}

// New creates a command named name whose usage header lists the given
// example invocations.
func New(name string, examples ...string) *Command {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(Stderr)
	fs.Usage = func() {
		fmt.Fprintf(Stderr, "usage: %s [flags]\n", name)
		for _, ex := range examples {
			fmt.Fprintf(Stderr, "  %s\n", ex)
		}
		fmt.Fprintln(Stderr, "flags:")
		fs.PrintDefaults()
	}
	return &Command{name: name, fs: fs}
}

// Flags exposes the underlying flag set for registration.
func (c *Command) Flags() *flag.FlagSet { return c.fs }

// Parse parses args (excluding the program name). On a parse error the
// flag package has already printed the error and usage to stderr; the
// command exits 2.
func (c *Command) Parse(args []string) {
	if err := c.fs.Parse(args); err != nil {
		Exit(2)
	}
}

// UsageErrorf reports an invalid flag value or configuration: the
// error and usage go to stderr and the command exits 2.
func (c *Command) UsageErrorf(format string, a ...any) {
	fmt.Fprintf(Stderr, "%s: %s\n", c.name, fmt.Sprintf(format, a...))
	c.fs.Usage()
	Exit(2)
}

// Fatalf reports a runtime failure and exits 1.
func (c *Command) Fatalf(format string, a ...any) {
	fmt.Fprintf(Stderr, "%s: %s\n", c.name, fmt.Sprintf(format, a...))
	Exit(1)
}

// Check exits 1 with the error when err is non-nil.
func (c *Command) Check(err error) {
	if err != nil {
		c.Fatalf("%v", err)
	}
}
