package cli

import (
	"bytes"
	"strings"
	"testing"
)

// capture swaps Exit and Stderr, returning the captured stderr and a
// pointer to the recorded exit code (-1 when never called). Exit
// panics with a sentinel so the code under test stops where os.Exit
// would.
type exitSentinel int

func capture(t *testing.T) (*bytes.Buffer, *int) {
	t.Helper()
	var buf bytes.Buffer
	code := -1
	oldExit, oldStderr := Exit, Stderr
	Exit = func(c int) { code = c; panic(exitSentinel(c)) }
	Stderr = &buf
	t.Cleanup(func() { Exit, Stderr = oldExit, oldStderr })
	return &buf, &code
}

func run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(exitSentinel); !ok {
				panic(r)
			}
		}
	}()
	fn()
}

func TestParseUnknownFlagExits2WithUsage(t *testing.T) {
	buf, code := capture(t)
	c := New("democmd", "democmd -x 1")
	c.Flags().Int("x", 0, "an int")
	run(func() { c.Parse([]string{"-bogus"}) })
	if *code != 2 {
		t.Fatalf("exit code %d, want 2", *code)
	}
	out := buf.String()
	if !strings.Contains(out, "usage: democmd") || !strings.Contains(out, "-bogus") {
		t.Fatalf("stderr missing usage or error:\n%s", out)
	}
}

func TestUsageErrorfExits2WithUsage(t *testing.T) {
	buf, code := capture(t)
	c := New("democmd", "democmd -x 1")
	c.Flags().Int("x", 0, "an int")
	run(func() { c.Parse([]string{"-x", "7"}) })
	run(func() { c.UsageErrorf("x must be even, got %d", 7) })
	if *code != 2 {
		t.Fatalf("exit code %d, want 2", *code)
	}
	out := buf.String()
	if !strings.Contains(out, "democmd: x must be even, got 7") ||
		!strings.Contains(out, "usage: democmd") ||
		!strings.Contains(out, "democmd -x 1") {
		t.Fatalf("stderr missing error, usage, or example:\n%s", out)
	}
}

func TestCheckExits1(t *testing.T) {
	buf, code := capture(t)
	c := New("democmd")
	run(func() { c.Check(nil) })
	if *code != -1 {
		t.Fatalf("Check(nil) exited with %d", *code)
	}
	run(func() { c.Fatalf("boom") })
	if *code != 1 {
		t.Fatalf("exit code %d, want 1", *code)
	}
	if !strings.Contains(buf.String(), "democmd: boom") {
		t.Fatalf("stderr missing error: %q", buf.String())
	}
}
