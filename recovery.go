package adapt

import (
	"io"

	"adapt/internal/lss"
)

// WriteCheckpoint serializes the store's durable state (flushed
// segment summaries with per-slot versions). Blocks still buffered in
// open chunks are not durable and are not included — call Drain first
// for a clean-shutdown image, or checkpoint mid-run to model a crash.
func (s *Simulator) WriteCheckpoint(w io.Writer) error {
	return s.store.WriteCheckpoint(w)
}

// RecoverSimulator rebuilds a simulator from a checkpoint, rolling the
// LBA mapping forward from segment summaries: for every block the
// highest-versioned durable copy wins, including shadow copies written
// by ADAPT's cross-group aggregation (the §3.3 durability argument).
// The configuration must match the checkpoint's geometry; the
// placement policy restarts cold, as after any real restart.
func RecoverSimulator(r io.Reader, c SimulatorConfig) (*Simulator, error) {
	// Build a simulator to obtain a fresh policy instance and the
	// effective geometry, then recover the store state around it.
	fresh, err := NewSimulator(c)
	if err != nil {
		return nil, err
	}
	store, err := lss.Recover(r, fresh.store.Config(), fresh.policy)
	if err != nil {
		return nil, err
	}
	return &Simulator{store: store, policy: fresh.policy}, nil
}
