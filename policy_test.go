package adapt

import (
	"errors"
	"testing"
	"time"
)

// The untyped name constants must keep assigning to both plain strings
// (existing callers) and the typed layer.
var (
	_ string = PolicyADAPT
	_ Policy = PolicyADAPT
	_ string = VictimGreedy
	_ Victim = VictimGreedy
)

func TestParsePolicy(t *testing.T) {
	for _, name := range Policies() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("ParsePolicy(%q) = %q", name, p)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyADAPT {
		t.Fatalf("empty name = (%q, %v), want default adapt", p, err)
	}
	_, err := ParsePolicy("bogus")
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("unknown policy error = %v, want ErrUnknownPolicy", err)
	}
}

func TestParseVictim(t *testing.T) {
	for _, name := range Victims() {
		v, err := ParseVictim(name)
		if err != nil {
			t.Fatalf("ParseVictim(%q): %v", name, err)
		}
		if v.String() != name {
			t.Fatalf("ParseVictim(%q) = %q", name, v)
		}
	}
	if v, err := ParseVictim(""); err != nil || v != VictimGreedy {
		t.Fatalf("empty name = (%q, %v), want default greedy", v, err)
	}
	_, err := ParseVictim("bogus")
	if !errors.Is(err, ErrUnknownVictim) {
		t.Fatalf("unknown victim error = %v, want ErrUnknownVictim", err)
	}
}

// TestNameListingsExhaustive pins the listing functions to the parse
// layer: every listed name must round-trip through its parser AND
// build a working simulator, every exported name constant must appear
// in its listing, and near-miss spellings must be rejected with the
// right sentinel. A new policy that is added to one side but not the
// other fails here.
func TestNameListingsExhaustive(t *testing.T) {
	wantPolicies := []string{PolicySepGC, PolicyDAC, PolicyWARCIP, PolicyMiDA, PolicySepBIT, PolicyADAPT}
	wantVictims := []string{VictimGreedy, VictimCostBenefit, VictimDChoices, VictimWindowedGreedy, VictimRandomGreedy}
	cases := []struct {
		kind     string
		listing  []string
		want     []string
		parse    func(string) (string, error)
		sentinel error
	}{
		{"policy", Policies(), wantPolicies,
			func(s string) (string, error) { p, err := ParsePolicy(s); return p.String(), err },
			ErrUnknownPolicy},
		{"victim", Victims(), wantVictims,
			func(s string) (string, error) { v, err := ParseVictim(s); return v.String(), err },
			ErrUnknownVictim},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			if len(tc.listing) != len(tc.want) {
				t.Fatalf("listing has %d names, exported constants %d", len(tc.listing), len(tc.want))
			}
			listed := map[string]bool{}
			for i, name := range tc.listing {
				listed[name] = true
				if name != tc.want[i] {
					t.Errorf("listing[%d] = %q, want %q (evaluation order)", i, name, tc.want[i])
				}
				got, err := tc.parse(name)
				if err != nil || got != name {
					t.Errorf("parse(%q) = (%q, %v), want clean round-trip", name, got, err)
				}
				// Every listed name must also survive the constructor.
				cfg := SimulatorConfig{UserBlocks: 4 << 10}
				if tc.kind == "policy" {
					cfg.Policy = name
				} else {
					cfg.Victim = name
				}
				if _, err := NewSimulator(cfg); err != nil {
					t.Errorf("NewSimulator with %s %q: %v", tc.kind, name, err)
				}
				// Case and whitespace variants are NOT accepted silently.
				for _, bad := range []string{" " + name, name + " ", "X" + name} {
					if _, err := tc.parse(bad); !errors.Is(err, tc.sentinel) {
						t.Errorf("parse(%q) = %v, want sentinel rejection", bad, err)
					}
				}
			}
			for _, name := range tc.want {
				if !listed[name] {
					t.Errorf("exported constant %q missing from listing", name)
				}
			}
		})
	}
}

// TestBuildValidationNoPanic checks that configurations which used to
// panic deep inside the store (or the array constructor) now surface
// as constructor errors.
func TestBuildValidationNoPanic(t *testing.T) {
	cases := []struct {
		name string
		cfg  SimulatorConfig
	}{
		{"negative over-provision", SimulatorConfig{UserBlocks: 1024, OverProvision: -0.1}},
		{"over-provision below GC floor", SimulatorConfig{UserBlocks: 1024, OverProvision: 0.01}},
		{"negative data columns", SimulatorConfig{UserBlocks: 1024, DataColumns: -1}},
		{"negative chunk blocks", SimulatorConfig{UserBlocks: 1024, ChunkBlocks: -4}},
		{"negative segment chunks", SimulatorConfig{UserBlocks: 1024, SegmentChunks: -2}},
		{"negative block size", SimulatorConfig{UserBlocks: 1024, BlockSize: -4096}},
		{"negative SLA window", SimulatorConfig{UserBlocks: 1024, SLAWindow: -time.Microsecond}},
		{"zero capacity", SimulatorConfig{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("NewSimulator panicked: %v", r)
				}
			}()
			if _, err := NewSimulator(tc.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	// Errors from bad names must carry the sentinels through the
	// constructor too.
	if _, err := NewSimulator(SimulatorConfig{UserBlocks: 1024, Policy: "bogus"}); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("constructor policy error = %v, want ErrUnknownPolicy", err)
	}
	if _, err := NewSimulator(SimulatorConfig{UserBlocks: 1024, Victim: "bogus"}); !errors.Is(err, ErrUnknownVictim) {
		t.Fatalf("constructor victim error = %v, want ErrUnknownVictim", err)
	}
}

// TestRunPrototypeFault drives the fault injector through the public
// API: the failure fires, every phase reports, and the counters are
// live.
func TestRunPrototypeFault(t *testing.T) {
	res, err := RunPrototype(PrototypeConfig{
		Simulator:   SimulatorConfig{UserBlocks: 8 << 10, Policy: PolicySepGC},
		Clients:     4,
		Ops:         16000,
		Theta:       0.99,
		Fill:        true,
		ReadRatio:   0.2,
		ServiceTime: time.Microsecond,
		QueueDepth:  8,
		Seed:        9,
		Fault: FaultConfig{
			FailDevice:      0,
			FailAtOp:        4000,
			RebuildDelayOps: 2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedDevice != 0 || res.FailedAtOp != 4000 {
		t.Fatalf("failure not recorded: %+v", res)
	}
	if res.RebuildChunks == 0 {
		t.Fatal("rebuild moved no chunks")
	}
	phases := map[string]bool{}
	for _, p := range res.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"healthy", "degraded", "rebuilding", "rebuilt"} {
		if !phases[want] {
			t.Fatalf("phase %q missing from %+v", want, res.Phases)
		}
	}
	// A healthy run keeps the fault fields zeroed and the device at -1.
	healthy, err := RunPrototype(PrototypeConfig{
		Simulator:   SimulatorConfig{UserBlocks: 4 << 10, Policy: PolicySepGC},
		Clients:     2,
		Ops:         4000,
		Theta:       0.9,
		ServiceTime: time.Microsecond,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.FailedDevice != -1 || len(healthy.Phases) != 0 {
		t.Fatalf("healthy run carries fault state: %+v", healthy)
	}
}
