package adapt

import (
	"io"
	"time"

	"adapt/internal/sim"
	"adapt/internal/trace"
)

// Op is a request type.
type Op uint8

// Request operations.
const (
	OpRead Op = iota
	OpWrite
)

// Record is one block I/O request; Offset and Size are bytes, Time is
// relative to the trace start.
type Record struct {
	Time   time.Duration
	Op     Op
	Offset int64
	Size   int64
}

// Trace is an ordered request sequence for one volume.
type Trace struct {
	Name    string
	Records []Record
}

// TraceStats summarizes a trace (Figure 2 characterization).
type TraceStats struct {
	Requests     int
	Writes       int
	Reads        int
	Duration     time.Duration
	ReqPerSec    float64
	AvgWriteKiB  float64
	FootprintKiB int64
}

func toInternal(t *Trace) *trace.Trace {
	out := &trace.Trace{Name: t.Name, Records: make([]trace.Record, len(t.Records))}
	for i, r := range t.Records {
		out.Records[i] = trace.Record{
			Time: sim.Time(r.Time), Op: trace.Op(r.Op), Offset: r.Offset, Size: r.Size,
		}
	}
	return out
}

func fromInternal(t *trace.Trace) *Trace {
	out := &Trace{Name: t.Name, Records: make([]Record, len(t.Records))}
	for i, r := range t.Records {
		out.Records[i] = Record{
			Time: time.Duration(r.Time), Op: Op(r.Op), Offset: r.Offset, Size: r.Size,
		}
	}
	return out
}

// Stats computes summary statistics with the given block size (0 means
// 4 KiB).
func (t *Trace) Stats(blockSize int64) TraceStats {
	s := toInternal(t).Analyze(blockSize)
	return TraceStats{
		Requests:     s.Requests,
		Writes:       s.Writes,
		Reads:        s.Reads,
		Duration:     time.Duration(s.Duration),
		ReqPerSec:    s.ReqPerSec,
		AvgWriteKiB:  s.AvgWriteKiB,
		FootprintKiB: s.FootprintKiB,
	}
}

// Densify remaps the trace onto a dense block address space and
// returns the remapped trace plus the number of dense blocks — use it
// before Replay for traces with sparse offsets.
func (t *Trace) Densify(blockSize int64) (*Trace, int64) {
	d, blocks := toInternal(t).Densify(blockSize)
	return fromInternal(d), blocks
}

// Replay drives the simulator with the trace: writes are placed block
// by block, reads are recorded, and buffered chunks are drained at the
// end. The trace must fit the simulator's LBA space (see Densify).
// Under Paranoid the replay runs through the oracle, so a divergence
// aborts it with an error wrapping ErrMismatch.
func (s *Simulator) Replay(t *Trace) error {
	if s.oracle != nil {
		return s.oracle.ReplayTrace(toInternal(t))
	}
	return trace.Replay(s.store, toInternal(t))
}

// ParseMSR parses an MSR-Cambridge CSV trace
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime).
func ParseMSR(r io.Reader, name string) (*Trace, error) {
	t, err := trace.ParseMSR(r, name)
	if err != nil {
		return nil, err
	}
	return fromInternal(t), nil
}

// ParseAli parses an Alibaba cloud block storage CSV trace
// (device_id,opcode,offset,length,timestamp).
func ParseAli(r io.Reader, name string) (*Trace, error) {
	t, err := trace.ParseAli(r, name)
	if err != nil {
		return nil, err
	}
	return fromInternal(t), nil
}

// ParseTencent parses a Tencent CBS CSV trace
// (timestamp,offset,size,ioType,volumeID), sector-addressed.
func ParseTencent(r io.Reader, name string) (*Trace, error) {
	t, err := trace.ParseTencent(r, name)
	if err != nil {
		return nil, err
	}
	return fromInternal(t), nil
}

// WriteBinary writes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	return trace.WriteBinary(w, toInternal(t))
}

// ReadBinaryTrace reads a trace written by WriteBinary.
func ReadBinaryTrace(r io.Reader) (*Trace, error) {
	t, err := trace.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return fromInternal(t), nil
}
