package adapt

import (
	"testing"
	"time"
)

func TestGCSchedConfigValidation(t *testing.T) {
	base := SimulatorConfig{UserBlocks: 4096, Policy: PolicySepGC}

	bad := base
	bad.GCSched = GCSchedConfig{Background: true, EmergencyFloor: 4} // sepgc: low watermark = 2+2
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("emergency floor at the low watermark accepted")
	}
	bad.GCSched.EmergencyFloor = -1
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("negative emergency floor accepted")
	}
	bad.GCSched = GCSchedConfig{EmergencyFloor: 1} // knob without Background
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("GCSched knobs without Background accepted")
	}
	bad.GCSched = GCSchedConfig{Background: true, SliceUnits: -3}
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("negative slice budget accepted")
	}

	good := base
	good.GCSched = GCSchedConfig{Background: true, EmergencyFloor: 2, SliceUnits: 16}
	if _, err := NewSimulator(good); err != nil {
		t.Fatalf("valid background config rejected: %v", err)
	}
}

// TestSimulatorBackgroundGCParanoid replays a GC-heavy workload with
// background-paced GC under the full reference-model oracle: per-op
// slices must preserve every correctness property the synchronous
// path guarantees.
func TestSimulatorBackgroundGCParanoid(t *testing.T) {
	s, err := NewSimulator(SimulatorConfig{
		UserBlocks: 4 << 10,
		Policy:     PolicySepGC,
		Paranoid:   true,
		GCSched:    GCSchedConfig{Background: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateYCSB(YCSBConfig{
		Blocks: 4 << 10, Writes: 24 << 10, Fill: true,
		Theta: 0.99, MeanGap: 50 * time.Microsecond, Seed: 3,
	})
	if err := s.Replay(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.GCCycles == 0 || m.SegmentsReclaimed == 0 {
		t.Fatalf("background GC never ran: %+v", m)
	}
	if m.WA < 1 || m.WA > 20 {
		t.Fatalf("implausible WA %f", m.WA)
	}
}

// TestPublicEngineBackgroundGC exercises the promoted Ingest surface:
// a public NewEngine with GCSched.Background, stepped through
// GCShards, must account paced slices and pass the close-time checks.
func TestPublicEngineBackgroundGC(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Simulator: SimulatorConfig{
			UserBlocks: 4096,
			Policy:     PolicySepGC,
			GCSched:    GCSchedConfig{Background: true},
		},
		ServiceTime: time.Microsecond,
		Fill:        true,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := eng.GCShards()
	if len(shards) != 1 {
		t.Fatalf("flat public engine exposes %d GC shards", len(shards))
	}
	for i := 0; i < 8192; i++ {
		if err := eng.Write(int64(i%4096), 1); err != nil {
			t.Fatal(err)
		}
		for _, gs := range shards {
			gs.GCStep(16)
		}
	}
	st := eng.Stats()
	if st.GCSlices == 0 {
		t.Fatalf("no paced slices accounted: %+v", st)
	}
	if f := eng.QueueFill(); f < 0 || f > 1 {
		t.Fatalf("queue fill %v outside [0,1]", f)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close (oracle full check): %v", err)
	}
}

func TestPublicEngineValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewEngine(EngineConfig{
		Simulator: SimulatorConfig{UserBlocks: 1024, Policy: "bogus"},
	}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRunPrototypeBackgroundGC runs the concurrent prototype with
// paced GC end to end through the public configuration.
func TestRunPrototypeBackgroundGC(t *testing.T) {
	res, err := RunPrototype(PrototypeConfig{
		Simulator: SimulatorConfig{
			UserBlocks: 8 << 10,
			Policy:     PolicySepGC,
			GCSched:    GCSchedConfig{Background: true, SliceUnits: 16},
		},
		Clients:     4,
		Ops:         32 << 10,
		Theta:       0.99,
		Fill:        true,
		ServiceTime: time.Microsecond,
		QueueDepth:  8,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec <= 0 {
		t.Fatal("no throughput")
	}
	if res.WA < 1 || res.WA > 20 {
		t.Fatalf("implausible WA %f", res.WA)
	}
}
