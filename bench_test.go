package adapt

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4) at a reduced scale. Each benchmark reports the
// figure's headline numbers as custom metrics so that
// `go test -bench . -benchmem` doubles as a reproduction run; use
// cmd/adaptbench for the full-scale tables.

import (
	"testing"
	"time"

	"adapt/internal/harness"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/workload"
)

func benchScale() harness.Scale {
	return harness.Scale{
		Volumes:         4,
		VolumeBlocks:    8 << 10,
		OverwriteFactor: 4,
		YCSBBlocks:      16 << 10,
		YCSBWrites:      96 << 10,
		Seed:            1,
	}
}

// BenchmarkFig2WorkloadCDF regenerates Figure 2: per-volume request
// rate and write-size distributions of the synthesized suites.
func BenchmarkFig2WorkloadCDF(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		results := harness.Fig2(sc, workload.Profiles())
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(100*r.FracVolumesUnder10, string(r.Profile)+"_%vol<10req/s")
				b.ReportMetric(100*r.FracWritesLE8KiB, string(r.Profile)+"_%write<=8KiB")
			}
		}
	}
}

// BenchmarkFig3GroupTraffic regenerates Figure 3: per-group traffic
// split and group sizes for the five baselines under the Ali profile.
func BenchmarkFig3GroupTraffic(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		results, err := harness.Fig3(sc, harness.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(100*r.PaddingShareOfTotal(), r.Policy+"_pad%")
			}
		}
	}
}

func benchGrid(b *testing.B, victim lss.VictimPolicy, label string) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		grid, err := harness.RunGrid(sc, workload.Profiles(),
			[]lss.VictimPolicy{victim}, harness.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range workload.Profiles() {
				for _, pol := range harness.PolicyNames() {
					b.ReportMetric(grid.OverallWA(p, victim, pol),
						string(p)+"_"+pol+"_WA")
				}
			}
		}
	}
	_ = label
}

// BenchmarkFig8WAGreedy regenerates Figure 8 (Greedy policy): overall
// WA of all six placement schemes on all three suites.
func BenchmarkFig8WAGreedy(b *testing.B) { benchGrid(b, lss.Greedy, "greedy") }

// BenchmarkFig8WACostBenefit regenerates Figure 8 (Cost-Benefit).
func BenchmarkFig8WACostBenefit(b *testing.B) { benchGrid(b, lss.CostBenefit, "cost-benefit") }

// BenchmarkFig9PaddingCDF regenerates Figure 9: per-volume padding
// traffic ratio distributions.
func BenchmarkFig9PaddingCDF(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		grid, err := harness.RunGrid(sc, workload.Profiles(),
			[]lss.VictimPolicy{lss.Greedy}, harness.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		rows := harness.Fig9(grid)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Profile == workload.ProfileAli {
					b.ReportMetric(100*r.FracUnder25, r.Policy+"_%vol_pad<25%")
				}
			}
		}
	}
}

// BenchmarkFig10Correlation regenerates Figure 10: the correlation
// between ADAPT's per-volume padding reduction and WA reduction
// against MiDA and SepBIT.
func BenchmarkFig10Correlation(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		grid, err := harness.RunGrid(sc, []workload.Profile{workload.ProfileAli},
			[]lss.VictimPolicy{lss.Greedy}, harness.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		results := harness.Fig10(grid)
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Pearson, "pearson_vs_"+r.Baseline)
			}
		}
	}
}

// BenchmarkFig11Sensitivity regenerates Figure 11: WA versus access
// density and versus zipfian skew under YCSB-A.
func BenchmarkFig11Sensitivity(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig11(sc, harness.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range res.Density {
				b.ReportMetric(c.WA, c.Policy+"_"+c.Setting+"_WA")
			}
		}
	}
}

// BenchmarkFig12Throughput regenerates Figure 12a: prototype
// throughput with 1/4/8 clients.
func BenchmarkFig12Throughput(b *testing.B) {
	sc := benchScale()
	opts := harness.Fig12Options{
		ClientCounts: []int{1, 4, 8},
		Blocks:       sc.YCSBBlocks,
		Ops:          8 * sc.YCSBBlocks,
		// Device-bound regime: throughput reflects bandwidth consumed
		// by GC and padding, not policy CPU cost.
		ServiceTime: 50 * time.Microsecond,
		// Memory panel handled by BenchmarkFig12Memory.
		MemoryBlocks:  []int64{1},
		MemoryWarmOps: 1,
	}
	policies := []string{"sepgc", "sepbit", harness.PolicyADAPT}
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig12(sc, policies, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Throughput {
				b.ReportMetric(r.OpsPerSec, r.Policy+"_c"+itoa(r.Clients)+"_ops/s")
			}
		}
	}
}

// BenchmarkFig12Memory regenerates Figure 12b: policy metadata
// footprint, ADAPT versus SepBIT.
func BenchmarkFig12Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const blocks = 64 << 10
		sep, err := PolicyFootprintBytes(PolicySepBIT, blocks, blocks)
		if err != nil {
			b.Fatal(err)
		}
		ad, err := PolicyFootprintBytes(PolicyADAPT, blocks, blocks)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(sep), "sepbit_bytes")
			b.ReportMetric(float64(ad), "adapt_bytes")
			b.ReportMetric(100*float64(ad-sep)/float64(sep), "overhead_%")
		}
	}
}

// BenchmarkFault regenerates the fault-injection extension: one device
// failure mid-run, degraded reads via XOR reconstruction, and a rebuild
// streamed through the same bounded device queues. Reports per-phase
// throughput and WA plus the fault-path counters.
func BenchmarkFault(b *testing.B) {
	sc := benchScale()
	policies := []string{"sepgc", harness.PolicyADAPT}
	for i := 0; i < b.N; i++ {
		res, err := harness.ExpFault(sc, policies, harness.DefaultFaultOptions(sc))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Rows {
				b.ReportMetric(r.OpsPerSec, r.Policy+"_"+r.Phase.String()+"_ops/s")
				b.ReportMetric(r.WA, r.Policy+"_"+r.Phase.String()+"_WA")
			}
			for _, c := range res.Counters {
				b.ReportMetric(float64(c.DegradedReads), c.Policy+"_degraded_reads")
				b.ReportMetric(float64(c.RebuildChunks), c.Policy+"_rebuild_chunks")
			}
		}
	}
}

// benchAblation measures ADAPT's WA with one mechanism disabled on a
// sparse skewed workload — the design-choice ablations DESIGN.md
// calls out.
func benchAblation(b *testing.B, opts ADAPTOptions, label string) {
	const blocks = 16 << 10
	for i := 0; i < b.N; i++ {
		s, err := NewSimulator(SimulatorConfig{
			UserBlocks: blocks, Policy: PolicyADAPT, ADAPT: opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr := GenerateYCSB(YCSBConfig{
			Blocks: blocks, Writes: 6 * blocks, Fill: true,
			Theta: 0.99, MeanGap: 300 * time.Microsecond, Seed: 1,
		})
		if err := s.Replay(tr); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			m := s.Metrics()
			b.ReportMetric(m.WA, label+"_WA")
			b.ReportMetric(100*m.PaddingRatio, label+"_pad%")
		}
	}
}

// BenchmarkAblationFull is the reference point for the ablations.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, ADAPTOptions{}, "full") }

// BenchmarkAblationNoAggregation disables cross-group aggregation.
func BenchmarkAblationNoAggregation(b *testing.B) {
	benchAblation(b, ADAPTOptions{DisableAggregation: true}, "noagg")
}

// BenchmarkAblationNoDemotion disables proactive demotion.
func BenchmarkAblationNoDemotion(b *testing.B) {
	benchAblation(b, ADAPTOptions{DisableDemotion: true}, "nodem")
}

// BenchmarkAblationNoAdaptation freezes the hot/cold threshold.
func BenchmarkAblationNoAdaptation(b *testing.B) {
	benchAblation(b, ADAPTOptions{DisableAdaptation: true}, "noadapt")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// benchWritePath measures the steady-state per-write cost of the
// store's write path, with or without a telemetry set attached. GC is
// active throughout: the store is filled and warmed with zipfian
// updates before the timer starts, and the measured writes use the
// same 300 µs gaps as the ablation benchmarks so SLA padding and GC
// both run — the worst case for the telemetry hooks, since every
// chunk flush, pad flush, and segment seal crosses an Emit call.
func benchWritePath(b *testing.B, enable bool) {
	const blocks = 16 << 10
	const gap = 300 * time.Microsecond
	s, err := NewSimulator(SimulatorConfig{UserBlocks: blocks, Policy: PolicySepGC})
	if err != nil {
		b.Fatal(err)
	}
	if enable {
		s.EnableTelemetry(TelemetryConfig{WindowInterval: 10 * time.Millisecond})
	}
	at := time.Duration(0)
	for lba := int64(0); lba < blocks; lba++ {
		if err := s.Write(lba, 1, at); err != nil {
			b.Fatal(err)
		}
	}
	z := workload.NewZipf(sim.NewRNG(1), blocks, 0.99, true)
	for i := 0; i < 4*blocks; i++ { // warm until GC is in steady state
		at += gap
		if err := s.Write(z.Next(), 1, at); err != nil {
			b.Fatal(err)
		}
	}
	// Pre-draw the LBAs so the timed loop is the write path alone.
	lbas := make([]int64, b.N)
	for i := range lbas {
		lbas[i] = z.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += gap
		if err := s.Write(lbas[i], 1, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryHotPath proves the observability claim from
// DESIGN.md: with no telemetry attached (the default), every hook on
// the write path is a nil-receiver no-op, so "disabled" must be
// indistinguishable (< 5 ns/op) from the pre-instrumentation write
// path; "enabled" carries a live registry, 10 ms-window recorder, and
// event tracer. EXPERIMENTS.md records the measured numbers.
func BenchmarkTelemetryHotPath(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchWritePath(b, false) })
	b.Run("enabled", func(b *testing.B) { benchWritePath(b, true) })
}

// BenchmarkExtMultiStream measures the in-device WA reduction from
// mapping groups to SSD streams one-to-one (§3.1).
func BenchmarkExtMultiStream(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExpStreams(sc, []string{"sepgc", harness.PolicyADAPT})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.SingleWA, r.Policy+"_1stream_devWA")
				b.ReportMetric(r.MultiWA, r.Policy+"_multi_devWA")
			}
		}
	}
}

// BenchmarkExtChunkSize sweeps the array chunk size (granularity
// mismatch ablation).
func BenchmarkExtChunkSize(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.ExpChunkSize(sc, []string{"sepgc", harness.PolicyADAPT})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				b.ReportMetric(c.WA, c.Policy+"_"+c.Setting+"_WA")
			}
		}
	}
}

// BenchmarkExtSLAWindow sweeps the coalescing deadline.
func BenchmarkExtSLAWindow(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.ExpSLAWindow(sc, []string{harness.PolicyADAPT})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				b.ReportMetric(100*c.PadRat, c.Setting+"_pad%")
			}
		}
	}
}

// BenchmarkExtVictims compares the five victim-selection policies.
func BenchmarkExtVictims(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := harness.ExpVictims(sc, []string{harness.PolicyADAPT})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				b.ReportMetric(c.GCWA, c.Setting+"_gcWA")
			}
		}
	}
}
