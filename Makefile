GO ?= go

.PHONY: check build vet test race bench-telemetry

## check: full local gate — vet, build, race-enabled test suite.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-telemetry: verify the disabled-telemetry hot path stays free.
bench-telemetry:
	$(GO) test -run '^$$' -bench BenchmarkTelemetryHotPath -benchtime 500000x -count 3 .
