GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: check build vet test race fault bench-telemetry bench-snapshot

## check: full local gate — vet, build, race-enabled test suite.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fault: fault-injection / degraded-mode suite under the race detector —
## failure schedules, XOR reconstruction, rebuild, retry/backoff, and the
## public-API fault path.
fault:
	$(GO) test -race -run 'Fault|Degraded|Rebuild|Backoff|MTBF' \
		. ./internal/fault ./internal/blockdev ./internal/prototype ./internal/harness ./internal/lss

## bench-telemetry: verify the disabled-telemetry hot path stays free.
bench-telemetry:
	$(GO) test -run '^$$' -bench BenchmarkTelemetryHotPath -benchtime 500000x -count 3 .

## bench-snapshot: record the perf trajectory — Fig-8, ablation, fault, and
## victim-selection benchmarks with allocation stats, as test2json
## events in BENCH_<date>.json. Recover benchstat-compatible text with:
##   jq -r 'select(.Action=="output") | .Output' BENCH_<date>.json
bench-snapshot:
	{ $(GO) test -json -run '^$$' -bench 'BenchmarkFig8WA|BenchmarkAblation|BenchmarkFault' -benchmem -benchtime 1x -count 1 . && \
	  $(GO) test -json -run '^$$' -bench BenchmarkGCVictimSelection -benchmem -benchtime 200x -count 1 ./internal/lss ; } \
	  > BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"
