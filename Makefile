GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)
FUZZTIME ?= 10s

# Every native fuzz target, as pkg:Target pairs (`go test -fuzz` accepts
# only one matching target per invocation, so `fuzz` loops over these).
FUZZ_TARGETS := \
	./internal/lss:FuzzStoreOps \
	./internal/lss:FuzzRecover \
	./internal/checker:FuzzOracleOps \
	./internal/fault:FuzzPlanFire \
	./internal/fault:FuzzBackoffDelay \
	./internal/trace:FuzzReadBinary \
	./internal/trace:FuzzParseMSR \
	./internal/trace:FuzzParseAli \
	./internal/trace:FuzzParseTencent \
	./internal/server/wire:FuzzWireDecode \
	./internal/segfile:FuzzSegfileRecover \
	./internal/nbd:FuzzNBDHandshake \
	./internal/nbd:FuzzNBDRequest

.PHONY: check build vet test race race-sharded fault fuzz paranoid bench-telemetry bench-snapshot gcsched-smoke serve-smoke trace-smoke scale-smoke durable-smoke nbd-smoke nbd-mount-smoke

## check: full local gate — vet, build, race-enabled test suite, the
## sharded-engine suite pinned to GOMAXPROCS=4, a short fuzz smoke of
## every target on top of the checked-in corpora, the background-GC
## tail gate, the durability gate (crash-point sweep plus SIGKILL
## restart), and end-to-end boots of the network service (plain,
## traced, and over the NBD frontend).
check: vet build race race-sharded fuzz gcsched-smoke durable-smoke serve-smoke trace-smoke nbd-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-sharded: the sharded engine and its server e2e under the race
## detector with GOMAXPROCS pinned to 4, so leader/follower group
## commit and cross-shard GC gating actually interleave even when the
## ambient GOMAXPROCS is 1.
race-sharded:
	GOMAXPROCS=4 $(GO) test -race -run 'TestServerE2EShardedFaultRebuild|TestSharded' \
		./internal/server ./internal/prototype

## fuzz: give every native fuzz target a real exploration budget
## (FUZZTIME per target, default 10s) beyond the committed seed corpora.
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; name=$${t##*:}; \
		echo "== fuzz $$name ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run "^$$name$$" -fuzz "^$$name$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

## paranoid: the oracle-backed correctness suite under the race detector —
## model-based differential over all six policies, metamorphic relations,
## the crash-point recovery sweep, and the public Paranoid mode.
paranoid:
	$(GO) test -race -run 'Paranoid|Oracle|Mirror|Differential|Reordered|SeedShift|VictimSequence|ExpectedRecovery|DoubleFault|RebuildInterrupted' \
		. ./internal/checker ./internal/harness ./internal/blockdev ./internal/lss

## fault: fault-injection / degraded-mode suite under the race detector —
## failure schedules, XOR reconstruction, rebuild, retry/backoff, and the
## public-API fault path.
fault:
	$(GO) test -race -run 'Fault|Degraded|Rebuild|Backoff|MTBF' \
		. ./internal/fault ./internal/blockdev ./internal/prototype ./internal/harness ./internal/lss

## bench-telemetry: verify the disabled-telemetry hot path stays free.
bench-telemetry:
	$(GO) test -run '^$$' -bench BenchmarkTelemetryHotPath -benchtime 500000x -count 3 .

## bench-snapshot: record the perf trajectory — Fig-8, ablation, fault, and
## victim-selection benchmarks with allocation stats, as test2json
## events in BENCH_<date>.json. Recover benchstat-compatible text with:
##   jq -r 'select(.Action=="output") | .Output' BENCH_<date>.json
bench-snapshot:
	{ printf '{"Action":"env","GOMAXPROCS":%d,"Date":"%s"}\n' "$$(nproc)" "$(BENCH_DATE)" && \
	  $(GO) run ./cmd/fscap && \
	  $(GO) test -json -run '^$$' -bench 'BenchmarkFig8WA|BenchmarkAblation|BenchmarkFault' -benchmem -benchtime 1x -count 1 . && \
	  $(GO) test -json -run '^$$' -bench BenchmarkGCVictimSelection -benchmem -benchtime 200x -count 1 -cpu 1,2,4,8 ./internal/lss && \
	  $(GO) test -json -run '^$$' -bench BenchmarkServerRoundtrip -benchmem -benchtime 2000x -count 1 -cpu 1,2,4,8 ./internal/server && \
	  $(GO) test -json -run '^$$' -bench BenchmarkTraceHotPath -benchmem -benchtime 1000000x -count 3 ./internal/server ; } \
	  > BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"

## gcsched-smoke: the tail-latency-aware GC gate. On the deterministic
## virtual-clock model (real stores, real pacer), background-paced GC
## must cut the client p999 by >=30% against the synchronous watermark
## baseline with write amplification within 2%, for every placement
## policy. Also lints the store-configuration API: lss.Store grows no
## new Set* setters — runtime changes go through Deps and Reconfigure.
gcsched-smoke:
	$(GO) test -run TestGCSchedModelAcceptance ./internal/harness
	@if grep -nE '^func \(s \*Store\) Set[A-Z]' internal/lss/*.go; then \
		echo "gcsched-smoke FAIL: lss.Store setters are banned — route runtime changes through Deps/Reconfigure"; \
		exit 1; \
	fi
	@echo "gcsched-smoke OK"

## durable-smoke: the durability gate under the race detector — the
## exhaustive crash-point sweep (kill the filesystem at every syscall
## boundary, recovery must match the acked-transition oracle exactly),
## the relaxed-sync sweep, the durable engine/server round trips, and
## the real SIGKILL process-restart e2e.
durable-smoke:
	$(GO) test -race -run 'TestCrashPointSweep|TestCrashSweepRelaxedSync|TestDurable|TestEngineDurable|TestShardedDurable' \
		./internal/segfile ./internal/prototype ./internal/server
	@echo "durable-smoke OK"

## serve-smoke: boot the network service end-to-end — adaptserve on a
## loopback port, a short adaptload burst, a telemetry scrape, and a
## graceful SIGTERM drain.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/adaptserve ./cmd/adaptload; \
	$$tmp/adaptserve -addr 127.0.0.1:19750 -telemetry 127.0.0.1:19751 -service-us 0 > $$tmp/serve.log 2>&1 & pid=$$!; \
	sleep 1; \
	$$tmp/adaptload -addr 127.0.0.1:19750 -tenants 4 -workers 4 -duration 2s > $$tmp/load.log 2>&1; \
	grep aggregate $$tmp/load.log; \
	awk '/^aggregate:/ { for (i = 2; i <= NF; i++) if ($$i == "ops/s" && $$(i-1) + 0 > 0) ok = 1 } END { exit !ok }' $$tmp/load.log; \
	curl -sf http://127.0.0.1:19751/metrics | grep -q srv_requests_total; \
	kill -TERM $$pid; wait $$pid; \
	grep -q '^final:' $$tmp/serve.log; \
	echo "serve-smoke OK"

## trace-smoke: boot the traced service end-to-end — adaptserve with
## request tracing on, an adaptload burst with client-forced exemplars
## and interleaved flushes, then assert /debug/trace serves attributed
## exemplars and the load report carries the per-stage breakdown.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/adaptserve ./cmd/adaptload; \
	$$tmp/adaptserve -addr 127.0.0.1:19760 -telemetry 127.0.0.1:19761 -service-us 0 -trace > $$tmp/serve.log 2>&1 & pid=$$!; \
	sleep 1; \
	$$tmp/adaptload -addr 127.0.0.1:19760 -tenants 4 -workers 4 -duration 2s -trace-every 4 -flush-every 32 > $$tmp/load.log 2>&1; \
	grep aggregate $$tmp/load.log; \
	grep -q 'server stage latency' $$tmp/load.log; \
	curl -sf 'http://127.0.0.1:19761/debug/trace?k=8' > $$tmp/trace.jsonl; \
	test -s $$tmp/trace.jsonl; \
	grep -q '"cause":' $$tmp/trace.jsonl; \
	grep -q '"total_ns":' $$tmp/trace.jsonl; \
	curl -sf http://127.0.0.1:19761/metrics | grep -q srv_trace_exemplars_total; \
	kill -TERM $$pid; wait $$pid; \
	echo "trace-smoke OK"

## nbd-smoke: the NBD frontend gate — the full internal/nbd suite under
## the race detector (handshake, mixed-workload byte-exact readback,
## RMW property test, fail+rebuild mid-traffic, SIGKILL restart over
## NBD), then a real process boot: adaptserve with -nbd-addr, an
## nbdload burst with unaligned writes and end-of-run verify over the
## standard protocol, a telemetry scrape for the nbd_* families, and a
## graceful SIGTERM drain.
nbd-smoke:
	$(GO) test -race -count=1 ./internal/nbd/...
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/adaptserve ./cmd/nbdload; \
	$$tmp/adaptserve -addr 127.0.0.1:19780 -telemetry 127.0.0.1:19781 -nbd-addr 127.0.0.1:19782 -service-us 0 > $$tmp/serve.log 2>&1 & pid=$$!; \
	sleep 1; \
	$$tmp/nbdload -addr 127.0.0.1:19782 -export vol0 -workers 4 -duration 2s -unaligned 0.5 -verify > $$tmp/load.log 2>&1; \
	grep aggregate $$tmp/load.log; \
	grep -q 'verify: all worker slices read back byte-identical' $$tmp/load.log; \
	curl -sf http://127.0.0.1:19781/metrics > $$tmp/metrics.txt; \
	grep -q nbd_requests_total $$tmp/metrics.txt; \
	grep -q nbd_handshakes_total $$tmp/metrics.txt; \
	grep -q nbd_rmw_writes_total $$tmp/metrics.txt; \
	kill -TERM $$pid; wait $$pid; \
	grep -q '^final:' $$tmp/serve.log; \
	echo "nbd-smoke OK"

## nbd-mount-smoke: opt-in kernel-attach gate — adaptserve with
## -nbd-addr, a real `nbd-client` attach to /dev/nbd*, an fio verify
## burst against the kernel block device, and a clean detach. Needs
## root, the nbd kernel module, and nbd-client + fio on PATH, so it is
## not part of `check`; it skips politely when the host can't run it.
nbd-mount-smoke:
	@set -e; \
	if ! command -v nbd-client >/dev/null 2>&1; then echo "nbd-mount-smoke SKIP (no nbd-client)"; exit 0; fi; \
	if ! command -v fio >/dev/null 2>&1; then echo "nbd-mount-smoke SKIP (no fio)"; exit 0; fi; \
	if [ "$$(id -u)" -ne 0 ]; then echo "nbd-mount-smoke SKIP (needs root)"; exit 0; fi; \
	if ! modprobe nbd 2>/dev/null && [ ! -b /dev/nbd0 ]; then echo "nbd-mount-smoke SKIP (no nbd kernel module)"; exit 0; fi; \
	tmp=$$(mktemp -d); dev=/dev/nbd0; \
	trap 'nbd-client -d $$dev 2>/dev/null || true; kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/adaptserve; \
	$$tmp/adaptserve -addr 127.0.0.1:19790 -telemetry '' -nbd-addr 127.0.0.1:19791 -service-us 0 > $$tmp/serve.log 2>&1 & pid=$$!; \
	sleep 1; \
	nbd-client -N vol0 127.0.0.1 19791 $$dev; \
	fio --name=nbdsmoke --filename=$$dev --rw=randrw --bs=4k --size=4M --io_size=8M \
		--direct=1 --verify=crc32c --do_verify=1 --output=$$tmp/fio.log; \
	nbd-client -d $$dev; \
	kill -TERM $$pid; wait $$pid; \
	echo "nbd-mount-smoke OK"

## scale-smoke: assert the sharded engine actually scales — boot
## adaptserve at 1 shard and at 4 shards, drive each with the same
## adaptload burst, and require the 4-shard aggregate throughput to be
## at least 1.5× the 1-shard run. Needs real cores to mean anything,
## so it skips on hosts with fewer than 4 CPUs.
scale-smoke:
	@set -e; \
	if [ "$$(nproc)" -lt 4 ]; then \
		echo "scale-smoke SKIP (need >=4 CPUs, have $$(nproc))"; exit 0; \
	fi; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/adaptserve ./cmd/adaptload; \
	for n in 1 4; do \
		$$tmp/adaptserve -addr 127.0.0.1:19770 -telemetry '' -shards $$n -trace=false > $$tmp/serve$$n.log 2>&1 & pid=$$!; \
		sleep 1; \
		$$tmp/adaptload -addr 127.0.0.1:19770 -tenants 8 -workers 8 -duration 2s > $$tmp/load$$n.log 2>&1; \
		kill -TERM $$pid; wait $$pid; pid=; \
	done; \
	one=$$(awk '/^aggregate:/ { for (i = 2; i <= NF; i++) if ($$i == "ops/s") print $$(i-1) }' $$tmp/load1.log); \
	four=$$(awk '/^aggregate:/ { for (i = 2; i <= NF; i++) if ($$i == "ops/s") print $$(i-1) }' $$tmp/load4.log); \
	awk -v a="$$one" -v b="$$four" 'BEGIN { \
		printf "scale-smoke: 1 shard %.0f ops/s, 4 shards %.0f ops/s (%.2fx)\n", a, b, b/a; \
		exit !(a > 0 && b > 1.5 * a) }'; \
	echo "scale-smoke OK"
